"""repro — Test planning for mixed-signal SOCs with wrapped analog cores.

A complete, self-contained reproduction of

    A. Sehgal, F. Liu, S. Ozev, K. Chakrabarty,
    "Test Planning for Mixed-Signal SOCs with Wrapped Analog Cores",
    Proc. DATE 2005.

The library covers the whole stack the paper builds on:

* :mod:`repro.soc` — SOC / core data model, an ITC'02-style ``.soc``
  format, and the ``p93791m`` benchmark (synthetic digital stand-in +
  the paper's five analog cores, Table 2 verbatim);
* :mod:`repro.wrapper` — digital test wrapper design (BFD
  ``Design_wrapper``) and Pareto width/time staircases;
* :mod:`repro.tam` — flexible-width rectangle-packing TAM scheduling
  with shared-wrapper serialization constraints, plus an exact
  branch-and-bound baseline;
* :mod:`repro.analog_wrapper` — behavioural analog test wrappers:
  modular pipelined ADC / modular DAC models (Fig. 4), mode control,
  per-test configuration, shared-wrapper sizing, calibrated area model;
* :mod:`repro.signal` — multi-tone stimuli, filter core models,
  spectra, cut-off extrapolation (the Fig. 5 experiment substrate);
* :mod:`repro.core` — the paper's contribution: wrapper-sharing
  enumeration, Eq. (1) area cost, Eq. (2)/(3) test cost, the
  ``Cost_Optimizer`` heuristic and its exhaustive baseline;
* :mod:`repro.experiments` — one driver per paper table/figure
  (Tables 1-4, Figures 4-5) plus ablations;
* :mod:`repro.workloads` — scenario generation beyond the paper's
  benchmark: seeded synthetic ITC'02-family digital SOCs (``d695`` /
  ``g1023`` / ``p22810`` / ``p93791`` stand-ins and random families),
  ADC/DAC/PLL analog-augmentation policies, and a registry of named
  presets every driver can run against;
* :mod:`repro.search` — pluggable anytime metaheuristic optimizers
  over the sharing space (random-restart greedy, simulated annealing,
  tabu, genetic with partition crossover), budgeted by evaluations or
  wall clock, seeded for reproducibility, each emitting a
  best-cost-vs-evaluations anytime trace — the scaling path for SOCs
  whose Bell-number partition spaces defeat the paper's drivers;
* :mod:`repro.runner` — a batch evaluation engine: (workload x TAM
  width x optimizer config x search strategy) grids fanned across
  ``multiprocessing`` workers, with a content-hash keyed on-disk cache
  for Pareto staircases and job results, streaming JSONL plus summary
  tables;
* :mod:`repro.reporting` — monospace tables, ASCII plots, and JSONL
  helpers the drivers and the sweep engine share.

Quickstart::

    from repro import plan_test

    plan = plan_test(width=32)
    print(plan.summary())

Batch evaluation::

    from repro.runner import expand_grid, run_sweep

    sweep = run_sweep(expand_grid(["p93791m", "d695m"], [16, 24, 32]),
                      workers=4, cache_dir=".repro_cache")
    print(sweep.render())
"""

from dataclasses import dataclass

from .core import (
    AreaModel,
    CostModel,
    CostWeights,
    OptimizationResult,
    Partition,
    ScheduleEvaluator,
    cost_optimizer,
    exhaustive_search,
    format_partition,
    identical_core_classes,
    paper_combinations,
    symmetry_reduce,
)
from .soc import Soc, p93791m
from .tam import Schedule, render_gantt

__version__ = "1.0.0"

__all__ = [
    "AreaModel",
    "CostModel",
    "CostWeights",
    "OptimizationResult",
    "Partition",
    "Schedule",
    "ScheduleEvaluator",
    "Soc",
    "TestPlan",
    "__version__",
    "cost_optimizer",
    "exhaustive_search",
    "format_partition",
    "p93791m",
    "plan_test",
    "render_gantt",
]


@dataclass(frozen=True)
class TestPlan:
    """A complete mixed-signal SOC test plan.

    Produced by :func:`plan_test`: the selected wrapper-sharing
    combination, the resulting TAM schedule, and the cost breakdown.
    """

    #: pytest: not a test class despite the Test* name
    __test__ = False

    soc: Soc
    width: int
    weights: CostWeights
    result: OptimizationResult
    schedule: Schedule
    time_cost: float
    area_cost: float

    @property
    def partition(self) -> Partition:
        """The chosen wrapper-sharing combination."""
        return self.result.best_partition

    def summary(self) -> str:
        """Readable multi-line plan summary."""
        lines = [
            f"SOC {self.soc.name}: TAM width {self.width}, weights "
            f"(w_T={self.weights.time:.2f}, w_A={self.weights.area:.2f})",
            f"chosen wrapper sharing: {format_partition(self.partition)} "
            f"({len(self.partition)} analog wrappers)",
            f"test time: {self.schedule.makespan} cycles "
            f"(C_T = {self.time_cost:.1f})",
        ]
        if self.schedule.power_budget is not None:
            lines.append(
                f"peak power: {self.schedule.peak_power} "
                f"(budget {self.schedule.power_budget})"
            )
        lines += [
            f"area cost: C_A = {self.area_cost:.1f}",
            f"total cost: {self.result.best_cost:.1f}",
            f"TAM evaluations: {self.result.n_evaluated} of "
            f"{self.result.n_total} "
            f"(saved {self.result.reduction_percent:.1f}%)",
        ]
        return "\n".join(lines)


def plan_test(
    soc: Soc | None = None,
    width: int = 32,
    weights: CostWeights | None = None,
    delta: float = 0.0,
    exhaustive: bool = False,
    **pack_kwargs,
) -> TestPlan:
    """One-call test planning for a mixed-signal SOC.

    Runs the paper's full flow: enumerate sharing combinations (with
    identical-core symmetry reduction), size wrappers and area costs,
    and pick the cheapest combination with ``Cost_Optimizer`` (or the
    exhaustive baseline).

    :param soc: the SOC; defaults to the paper's ``p93791m`` benchmark.
    :param width: SOC-level TAM width ``W``.
    :param weights: cost weights; defaults to balanced (0.5 / 0.5).
    :param delta: heuristic elimination threshold (0 = paper setting).
    :param exhaustive: evaluate every combination instead.
    :param pack_kwargs: forwarded to the rectangle packer.
    :returns: the :class:`TestPlan`.
    :raises ValueError: if *soc* has no analog cores.
    """
    soc = soc or p93791m()
    if not soc.analog_cores:
        raise ValueError(
            "plan_test needs a mixed-signal SOC (no analog cores found)"
        )
    weights = weights or CostWeights.balanced()
    names = [core.name for core in soc.analog_cores]
    combos = symmetry_reduce(
        paper_combinations(names), identical_core_classes(soc.analog_cores)
    )
    model = CostModel(
        soc,
        width,
        weights,
        AreaModel(soc.analog_cores),
        evaluator=ScheduleEvaluator(soc, width, **pack_kwargs),
    )
    if exhaustive:
        result = exhaustive_search(model, combos)
    else:
        result = cost_optimizer(model, combos, delta=delta)
    breakdown = model.breakdown(result.best_partition)
    return TestPlan(
        soc=soc,
        width=width,
        weights=weights,
        result=result,
        schedule=model.evaluator.schedule(result.best_partition),
        time_cost=breakdown.time_cost,
        area_cost=breakdown.area_cost,
    )
