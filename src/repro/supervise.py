"""Supervised worker pools: liveness, timeouts, retry, quarantine.

:class:`SupervisedPool` replaces the ``multiprocessing.Pool`` layer
under :class:`repro.runner.WorkerPool` and
:class:`repro.search.PortfolioPool` with raw ``Process`` workers the
parent actually watches.  A stock ``Pool`` wedges the whole run when
one worker segfaults mid-task and waits forever on a hung one; here
the supervision loop

* detects a dead worker (``is_alive()`` sweep plus a final result
  drain, so a task whose worker died *after* replying is not re-run),
  requeues its in-flight task with seeded exponential backoff, and
  respawns the worker (``pool.worker_restarts``);
* enforces a per-task wall timeout — a hung worker is terminated,
  replaced, and its task requeued;
* retries transient dispatch errors the same way (``job.retries``);
* quarantines a task that keeps failing after ``max_retries``
  (``job.quarantined``) — the caller receives the traceback instead of
  losing the run;
* gives up with :exc:`PoolBroken` once respawns exceed a cap, so
  callers can degrade to in-process execution instead of spinning.

Each worker owns a private task queue *and* a private result queue:
terminating a hung worker can only ever corrupt its own channel, which
is discarded with it.  Workers are daemonic and compatible with both
``fork`` and ``spawn`` start methods (everything crossing a queue is
picklable; the worker main function is module-level).

This module also owns :func:`default_start_method`, the single place
the runner and search layers agree on a start method (it lived in
``search.parallel``, which ``runner.pool`` had to reach into — a
dependency cycle this neutral module breaks).
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import random
import time
import traceback
from typing import Any, Callable, Iterable, Sequence

from . import faults, obs

__all__ = ["PoolBroken", "SupervisedPool", "default_start_method"]

#: seconds between supervision sweeps while no result is ready
_POLL_S = 0.01

#: seconds to wait for a worker to exit cleanly before terminating it
_JOIN_S = 5.0


def default_start_method() -> str:
    """``fork`` where available (fast, shares the warm evaluator code),
    else ``spawn`` (macOS default, Windows only option)."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class PoolBroken(RuntimeError):
    """The pool exceeded its worker-restart cap (or a worker failed to
    initialize) and cannot make progress; callers should degrade to
    in-process execution."""


def _worker_main(task_queue, result_queue, initializer, initargs) -> None:
    """Worker loop: run ``(task_id, fn, args)`` tuples until the
    ``None`` sentinel.  Exceptions are returned as tracebacks, never
    raised — only a crash (or a kill) ends the loop early."""
    if initializer is not None:
        try:
            initializer(*initargs)
        except BaseException:
            result_queue.put(("__init__", False, traceback.format_exc()))
            return
    while True:
        item = task_queue.get()
        if item is None:
            return
        task_id, fn, args = item
        try:
            value = fn(*args)
        except Exception:
            result_queue.put((task_id, False, traceback.format_exc()))
        else:
            result_queue.put((task_id, True, value))


class _Task:
    """Parent-side bookkeeping for one submitted task."""

    __slots__ = ("task_id", "fn", "args", "retries", "not_before", "pin")

    def __init__(self, task_id: int, fn: Callable, args: tuple,
                 pin: int | None = None):
        self.task_id = task_id
        self.fn = fn
        self.args = args
        self.retries = 0
        self.not_before = 0.0  # monotonic; backoff gate
        self.pin = pin  # slot index this task must run on (run_on_all)


class _Worker:
    """One supervised worker process with its private queues."""

    __slots__ = ("slot", "process", "task_queue", "result_queue",
                 "task", "deadline")

    def __init__(self, ctx, slot: int, initializer, initargs):
        self.slot = slot
        self.task_queue = ctx.Queue()
        self.result_queue = ctx.Queue()
        self.process = ctx.Process(
            target=_worker_main,
            args=(self.task_queue, self.result_queue, initializer,
                  initargs),
            daemon=True,
        )
        self.process.start()
        self.task: _Task | None = None
        self.deadline: float | None = None

    def discard(self, timeout_s: float = 0.0) -> None:
        """Tear the worker down, queues and all (used on replace/close)."""
        if self.process.is_alive():
            if timeout_s:
                self.process.join(timeout_s)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(_JOIN_S)
            if self.process.is_alive():  # pragma: no cover - stuck kernel
                self.process.kill()
                self.process.join(_JOIN_S)
        for q in (self.task_queue, self.result_queue):
            q.close()
            # the queues die with the worker; never block interpreter
            # shutdown on their feeder threads
            q.cancel_join_thread()


class SupervisedPool:
    """A pool of supervised worker processes.

    :param workers: number of worker processes (>= 1).
    :param start_method: ``fork``/``spawn``/``forkserver``; defaults to
        :func:`default_start_method`.
    :param initializer: optional per-worker initializer (module-level
        callable for ``spawn`` compatibility).
    :param initargs: initializer arguments (must be picklable; shared
        ``multiprocessing`` primitives from the same context are fine).
    :param max_restarts: worker respawns tolerated before the pool
        declares itself :exc:`PoolBroken`; defaults to
        ``max(4, 2 * workers + 2)``.
    :param supervise: when ``False``, skip the liveness and deadline
        sweeps (the zero-overhead comparator the benchmark uses to
        price supervision; faults then wedge or sink the run exactly
        like the pre-supervision pool would).
    """

    def __init__(self, workers: int, start_method: str | None = None,
                 initializer: Callable | None = None,
                 initargs: tuple = (),
                 max_restarts: int | None = None,
                 supervise: bool = True):
        if workers < 1:
            raise ValueError(f"SupervisedPool needs workers >= 1, got {workers}")
        method = start_method or default_start_method()
        available = multiprocessing.get_all_start_methods()
        if method not in available:
            raise ValueError(
                f"start method {method!r} not available here; "
                f"pick from {', '.join(available)}"
            )
        self.workers = workers
        self.start_method = method
        self.supervise = supervise
        self._ctx = multiprocessing.get_context(method)
        self._initializer = initializer
        self._initargs = initargs
        self._max_restarts = (max(4, 2 * workers + 2)
                              if max_restarts is None else max_restarts)
        self._restarts = 0
        self._next_task_id = 0
        self._pool: list[_Worker] | None = [
            _Worker(self._ctx, slot, initializer, initargs)
            for slot in range(workers)
        ]

    # -- lifecycle ----------------------------------------------------

    @property
    def context(self):
        """The ``multiprocessing`` context workers were spawned from
        (shared primitives handed to ``initargs`` must come from it)."""
        return self._ctx

    @property
    def closed(self) -> bool:
        return self._pool is None

    def _live(self) -> list[_Worker]:
        if self._pool is None:
            raise ValueError("SupervisedPool is closed")
        return self._pool

    def close(self) -> None:
        """Shut down the workers; idempotent.  Idle workers get the
        sentinel and a grace period, stragglers are terminated."""
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        for worker in pool:
            if worker.process.is_alive() and worker.task is None:
                try:
                    worker.task_queue.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        for worker in pool:
            worker.discard(timeout_s=_JOIN_S if worker.task is None else 0.0)

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- supervision internals ---------------------------------------

    def _respawn(self, worker: _Worker, reason: str) -> _Worker:
        """Replace a dead/hung worker in place, counting the restart."""
        self._restarts += 1
        obs.counter("pool.worker_restarts")
        obs.event("pool.worker_restart", slot=worker.slot, reason=reason,
                  restarts=self._restarts)
        worker.discard()
        if self._restarts > self._max_restarts:
            raise PoolBroken(
                f"gave up after {self._restarts} worker restarts "
                f"(cap {self._max_restarts}); last reason: {reason}"
            )
        replacement = _Worker(self._ctx, worker.slot, self._initializer,
                              self._initargs)
        pool = self._live()
        pool[pool.index(worker)] = replacement
        return replacement

    @staticmethod
    def _drain(worker: _Worker) -> list[tuple]:
        """Collect whatever results the worker has already delivered."""
        out = []
        while True:
            try:
                out.append(worker.result_queue.get_nowait())
            except (queue_mod.Empty, OSError, ValueError):
                return out

    def _requeue(self, task: _Task, pending: list[_Task], rng: random.Random,
                 max_retries: int, backoff_base_s: float, reason: str,
                 on_retry: Callable[[int, str], None] | None) -> _Task | None:
        """Retry *task* with backoff, or return it as quarantined.

        Returns the task when it exceeded ``max_retries`` (the caller
        reports it failed); ``None`` when it went back on the queue.
        """
        task.retries += 1
        if task.retries > max_retries:
            obs.counter("job.quarantined")
            obs.event("job.quarantined", task_id=task.task_id,
                      retries=task.retries - 1, reason=reason)
            return task
        delay = backoff_base_s * (2 ** (task.retries - 1))
        delay = min(delay, 2.0) * (0.5 + 0.5 * rng.random())
        task.not_before = time.monotonic() + delay
        obs.counter("job.retries")
        obs.event("job.retry", task_id=task.task_id, retries=task.retries,
                  reason=reason, backoff_s=round(delay, 4))
        if on_retry is not None:
            on_retry(task.task_id, reason)
        pending.append(task)
        return None

    # -- execution ----------------------------------------------------

    def run_tasks(self, tasks: Sequence[tuple[Callable, tuple]], *,
                  timeout_s: float | None = None, max_retries: int = 2,
                  backoff_base_s: float = 0.05, backoff_seed: int = 0,
                  on_retry: Callable[[int, str], None] | None = None,
                  pins: Sequence[int | None] | None = None):
        """Run ``(fn, args)`` tasks, yielding ``(index, ok, value)``.

        Results arrive in completion order; *index* is the position in
        *tasks*.  ``ok`` is ``False`` only after the task exhausted
        ``max_retries`` — *value* is then the traceback / error text of
        the final attempt.

        :param timeout_s: per-task wall timeout; a worker past it is
            killed and replaced, the task requeued.
        :param max_retries: attempts beyond the first before a task is
            quarantined.
        :param backoff_seed: seeds the jittered exponential backoff so
            retry timing is reproducible.
        :param on_retry: ``callback(index, reason)`` invoked before a
            requeue — the portfolio layer refunds ledger lanes here.
        :param pins: optional per-task worker slot (``run_on_all``).
        """
        workers = self._live()
        # a previous run_tasks abandoned mid-iteration (interrupt in the
        # caller) leaves workers marked busy; replace them so this run
        # cannot deadlock waiting on results nobody collects
        for worker in list(workers):
            if worker.task is not None:
                worker.task = None
                worker.deadline = None
                worker.process.terminate()
                self._respawn(worker, "stale in-flight task")
        rng = random.Random(backoff_seed)
        pending: list[_Task] = [
            _Task(i, fn, args, pin=None if pins is None else pins[i])
            for i, (fn, args) in enumerate(tasks)
        ]
        outstanding = len(pending)

        def fail(task: _Task, reason: str):
            victim = self._requeue(task, pending, rng, max_retries,
                                   backoff_base_s, reason, on_retry)
            return None if victim is None else (victim.task_id, False, reason)

        while outstanding:
            progressed = False
            now = time.monotonic()

            # dispatch ready tasks onto idle workers
            for worker in workers:
                if worker.task is not None or not pending:
                    continue
                slot_ok = [t for t in pending
                           if t.not_before <= now
                           and t.pin in (None, worker.slot)]
                if not slot_ok:
                    continue
                task = slot_ok[0]
                pending.remove(task)
                if not worker.process.is_alive():
                    # died idle (e.g. crashed right after its last
                    # result); replace before handing it work
                    worker = self._respawn(worker, "died-idle")
                try:
                    faults.hit("dispatch")
                    worker.task_queue.put(
                        (task.task_id, task.fn, task.args))
                except faults.TransientFault:
                    quarantined = fail(task, "transient dispatch error")
                    if quarantined is not None:
                        outstanding -= 1
                        yield quarantined
                    continue
                worker.task = task
                worker.deadline = (None if timeout_s is None
                                   else now + timeout_s)
                progressed = True

            # collect results
            for worker in workers:
                if worker.task is None:
                    continue
                for task_id, ok, value in self._drain(worker):
                    if task_id == "__init__":
                        raise PoolBroken(
                            f"worker initializer failed:\n{value}")
                    assert worker.task is not None
                    assert task_id == worker.task.task_id
                    task, worker.task, worker.deadline = (
                        worker.task, None, None)
                    progressed = True
                    if ok:
                        outstanding -= 1
                        yield task_id, True, value
                    else:
                        quarantined = fail(task, value)
                        if quarantined is not None:
                            outstanding -= 1
                            yield quarantined

            if self.supervise:
                # liveness sweep: a dead worker's in-flight task is
                # requeued (after a final drain above caught any result
                # it delivered before dying)
                for worker in list(workers):
                    if worker.task is None or worker.process.is_alive():
                        continue
                    task, worker.task = worker.task, None
                    self._respawn(worker, "worker died")
                    progressed = True
                    quarantined = fail(
                        task,
                        f"worker died (exitcode "
                        f"{worker.process.exitcode})")
                    if quarantined is not None:
                        outstanding -= 1
                        yield quarantined

                # deadline sweep: kill and replace hung workers
                now = time.monotonic()
                for worker in list(workers):
                    if (worker.task is None or worker.deadline is None
                            or now < worker.deadline):
                        continue
                    task, worker.task = worker.task, None
                    worker.process.terminate()
                    self._respawn(worker, "job timeout")
                    progressed = True
                    quarantined = fail(
                        task, f"job exceeded {timeout_s}s wall timeout")
                    if quarantined is not None:
                        outstanding -= 1
                        yield quarantined

            if outstanding and not progressed:
                time.sleep(_POLL_S)

    def run_on_all(self, fn: Callable, args: tuple = ()) -> list:
        """Run ``fn(*args)`` once on *every* worker (warm-up fan-out).

        Returns the per-slot results.  A worker that dies mid-warm is
        replaced and re-warmed; a task that keeps failing raises
        ``RuntimeError`` with its traceback.
        """
        workers = self._live()
        results: list = [None] * len(workers)
        tasks = [(fn, args)] * len(workers)
        for index, ok, value in self.run_tasks(
                tasks, max_retries=1, pins=list(range(len(workers)))):
            if not ok:
                raise RuntimeError(f"worker warm-up failed:\n{value}")
            results[index] = value
        return results

    def imap_unordered(self, fn: Callable, iterable: Iterable, *,
                       timeout_s: float | None = None,
                       max_retries: int = 2):
        """``Pool.imap_unordered`` shape on the supervised substrate:
        yields values in completion order, raising ``RuntimeError`` on
        the first quarantined task."""
        tasks = [(fn, (item,)) for item in iterable]
        for _index, ok, value in self.run_tasks(
                tasks, timeout_s=timeout_s, max_retries=max_retries):
            if not ok:
                raise RuntimeError(value)
            yield value
