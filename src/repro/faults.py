"""Deterministic fault injection for the execution substrate.

The supervision layer (:mod:`repro.supervise`, the sweep engine, the
portfolio drivers) exists to survive worker crashes, hung jobs, torn
cache writes, and transient dispatch errors.  None of those happen on
a healthy CI box, so this module makes them happen *on demand and
deterministically*: a :class:`FaultPlan` — parsed from the
``REPRO_FAULTS`` environment variable, which both ``fork`` and
``spawn`` workers inherit — arms faults at named **sites** the
instrumented code touches through :func:`hit` / :func:`mangle`.

Spec grammar (semicolon-separated)::

    REPRO_FAULTS="dir=/tmp/markers;crash@job:2;hang@lane:1:30;corrupt@cache:1;flaky@dispatch:1"

Each entry is ``kind@site:occurrence[:param]``:

* ``kind`` — ``crash`` (``os._exit``), ``hang`` (sleep *param*
  seconds, default 60), ``flaky`` (raise :class:`TransientFault`),
  ``abort`` (raise :class:`FaultInjected` — the in-process stand-in
  for a kill, used by checkpoint/resume tests), ``corrupt`` (truncate
  the payload passed through :func:`mangle`);
* ``site`` — a name the instrumented code chose (``job`` at sweep-job
  start, ``lane`` at portfolio-lane start, ``eval`` per paid search
  evaluation, ``cache`` per cache write, ``dispatch`` per supervised
  dispatch, ``server`` per HTTP request, ``queue`` per dequeued
  server job);
* ``occurrence`` — fire on the Nth hit of that site in a process
  (1-based; ``0`` = every hit);
* ``param`` — kind-specific (the hang duration in seconds).

The ``dir=PATH`` option makes every entry **once globally**: before
firing, the process claims an exclusive marker file
(``O_CREAT | O_EXCL``) under PATH, so exactly one process fires each
armed fault no matter how many workers reach its site — which is what
lets a chaos test assert "one worker crash, then clean recovery".

Every fired fault bumps the ``faults.injected`` telemetry counter and
emits a ``fault.injected`` event (flushed *before* a crash fault
exits, so the injection itself is visible in the aggregated metrics).
With ``REPRO_FAULTS`` unset the whole module costs one environment
lookup per instrumented site.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from . import obs

__all__ = [
    "ENV_FAULTS",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "TransientFault",
    "active",
    "hit",
    "install",
    "mangle",
]

#: environment variable carrying the fault spec (inherited by both
#: ``fork`` and ``spawn`` worker processes)
ENV_FAULTS = "REPRO_FAULTS"

KINDS = ("crash", "hang", "flaky", "abort", "corrupt")

#: exit code a ``crash`` fault dies with (distinct from Python's 1)
CRASH_EXIT_CODE = 13


class FaultInjected(RuntimeError):
    """An ``abort`` fault fired: the in-process simulation of a kill.

    Checkpoint/resume tests raise this mid-search instead of calling
    ``os._exit`` so they can catch the "kill" and resume in the same
    process.
    """


class TransientFault(RuntimeError):
    """A ``flaky`` fault fired: a retryable, transient dispatch error."""


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: ``kind@site:occurrence[:param]``."""

    kind: str
    site: str
    occurrence: int
    param: str | None = None

    def render(self) -> str:
        base = f"{self.kind}@{self.site}:{self.occurrence}"
        return f"{base}:{self.param}" if self.param is not None else base


class FaultPlan:
    """A parsed fault spec with per-process site counters.

    :param specs: the armed :class:`FaultSpec` entries.
    :param marker_dir: when set, each entry fires at most once
        *globally* — the firing process must claim an exclusive marker
        file under this directory first.
    """

    def __init__(self, specs: tuple[FaultSpec, ...],
                 marker_dir: str | None = None):
        self.specs = specs
        self.marker_dir = marker_dir
        self._counts: dict[str, int] = {}

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (see module docstring).

        :raises ValueError: on a malformed entry — a misconfigured
            chaos run must fail loudly, not silently skip injection.
        """
        specs: list[FaultSpec] = []
        marker_dir = None
        for raw in text.split(";"):
            entry = raw.strip()
            if not entry:
                continue
            if entry.startswith("dir="):
                marker_dir = entry[4:]
                continue
            head, _, rest = entry.partition("@")
            if head not in KINDS:
                raise ValueError(
                    f"unknown fault kind {head!r} in {entry!r}; "
                    f"pick from {', '.join(KINDS)}"
                )
            parts = rest.split(":")
            if len(parts) < 2 or not parts[0]:
                raise ValueError(
                    f"malformed fault entry {entry!r}; expected "
                    f"kind@site:occurrence[:param]"
                )
            try:
                occurrence = int(parts[1])
            except ValueError:
                raise ValueError(
                    f"occurrence must be an integer in {entry!r}"
                ) from None
            if occurrence < 0:
                raise ValueError(
                    f"occurrence must be >= 0 in {entry!r}"
                )
            param = parts[2] if len(parts) > 2 else None
            specs.append(FaultSpec(head, parts[0], occurrence, param))
        return cls(tuple(specs), marker_dir)

    def render(self) -> str:
        """The spec string :meth:`parse` round-trips."""
        parts = []
        if self.marker_dir:
            parts.append(f"dir={self.marker_dir}")
        parts.extend(spec.render() for spec in self.specs)
        return ";".join(parts)

    def _claim(self, index: int) -> bool:
        """Whether this process may fire spec *index* (global-once
        semantics when a marker directory is armed)."""
        if not self.marker_dir:
            return True
        os.makedirs(self.marker_dir, exist_ok=True)
        path = os.path.join(self.marker_dir, f"fired-{index}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def _matching(self, site: str, kinds: tuple[str, ...]):
        """Claimed specs due to fire on this hit of *site*."""
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        for index, spec in enumerate(self.specs):
            if spec.site != site or spec.kind not in kinds:
                continue
            if spec.occurrence and count != spec.occurrence:
                continue
            if self._claim(index):
                yield spec

    def fire(self, site: str) -> None:
        """Trigger any armed non-corrupt fault for this hit of *site*."""
        for spec in self._matching(
            site, ("crash", "hang", "flaky", "abort")
        ):
            _announce(spec)
            if spec.kind == "crash":
                os._exit(CRASH_EXIT_CODE)
            if spec.kind == "hang":
                time.sleep(float(spec.param) if spec.param else 60.0)
            elif spec.kind == "flaky":
                raise TransientFault(
                    f"injected transient fault at {site!r}"
                )
            elif spec.kind == "abort":
                raise FaultInjected(f"injected abort at {site!r}")

    def corrupt(self, site: str, payload: str) -> str:
        """*payload*, truncated when a ``corrupt`` fault fires here."""
        for spec in self._matching(site, ("corrupt",)):
            _announce(spec)
            # chop mid-record: the torn tail a writer killed between
            # write() and rename-free flush would leave behind
            return payload[: max(1, len(payload) // 3)]
        return payload


def _announce(spec: FaultSpec) -> None:
    """Count + spool the injection (before a crash kills the process)."""
    st = obs.state()
    if st is None:
        return
    st.registry.counter("faults.injected").inc()
    st.emit("fault.injected", kind=spec.kind, site=spec.site)
    st.flush()


# plan cache keyed on (pid, spec text): a fork child re-parses (fresh
# per-process site counters), and tests that swap the env var get a
# fresh plan on the next hit
_CACHE: tuple[int, str, FaultPlan] | None = None


def active() -> FaultPlan | None:
    """The process's armed plan, or ``None`` (the common case)."""
    global _CACHE
    text = os.environ.get(ENV_FAULTS)
    if not text:
        return None
    pid = os.getpid()
    cache = _CACHE
    if cache is None or cache[0] != pid or cache[1] != text:
        _CACHE = cache = (pid, text, FaultPlan.parse(text))
    return cache[2]


def install(spec: str | FaultPlan | None) -> None:
    """Arm *spec* for this process and its future workers (via the
    environment); ``None`` disarms."""
    global _CACHE
    _CACHE = None
    if spec is None:
        os.environ.pop(ENV_FAULTS, None)
        return
    text = spec.render() if isinstance(spec, FaultPlan) else spec
    FaultPlan.parse(text)  # validate before arming
    os.environ[ENV_FAULTS] = text


def hit(site: str) -> None:
    """Fire any armed fault at *site* (no-op without a plan)."""
    plan = active()
    if plan is not None:
        plan.fire(site)


def mangle(site: str, payload: str) -> str:
    """Pass *payload* through any armed ``corrupt`` fault at *site*."""
    plan = active()
    if plan is None:
        return payload
    return plan.corrupt(site, payload)
