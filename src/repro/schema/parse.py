"""Position-aware readers and the strict/lenient shape checker.

The stdlib ``json`` module throws away positions the moment it builds
the tree, so this module carries its own small recursive-descent JSON
reader that records the line/column of every mapping key and sequence
element it visits.  YAML input reuses PyYAML's composer (node marks are
free) when the optional dependency is importable; the core path stays
stdlib-only.

Errors never stop at the first problem: the shape checker collects
:class:`Diagnostic` records — each anchored to a source line/column and
a dotted document path — and raises one :class:`ScenarioError` carrying
all of them, so a user fixing a hand-written scenario sees every typo'd
field and out-of-range value in one pass.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..soc.model import AnalogCore, AnalogTest, DigitalCore, Soc
from . import model as _model
from .model import (
    ANALOG_FIELDS,
    DIGITAL_FIELDS,
    OPTIMIZER_FIELDS,
    ROOT_FIELDS,
    SCHEMA_VERSION,
    SOC_FIELDS,
    TAM_FIELDS,
    TEST_FIELDS,
    OptimizerProfile,
    ScenarioDoc,
    TamConfig,
)

__all__ = [
    "Diagnostic",
    "ScenarioError",
    "detect_format",
    "parse",
    "parse_file",
]


@dataclass(frozen=True)
class Diagnostic:
    """One validation finding, anchored to the source when possible."""

    path: str
    message: str
    line: int | None = None
    column: int | None = None
    source: str | None = None

    def render(self) -> str:
        where = self.source or "<scenario>"
        if self.line is not None:
            where += f":{self.line}"
            if self.column is not None:
                where += f":{self.column}"
        at = f" at {self.path}" if self.path else ""
        return f"{where}: {self.message}{at}"


class ScenarioError(ValueError):
    """A scenario document failed to parse or validate.

    Carries every collected :class:`Diagnostic` on ``.diagnostics``;
    ``str()`` shows the first with a count, :meth:`render` shows all.
    """

    def __init__(self, diagnostics):
        self.diagnostics: tuple[Diagnostic, ...] = tuple(diagnostics)
        if not self.diagnostics:
            raise ValueError("ScenarioError needs at least one diagnostic")
        first = self.diagnostics[0].render()
        extra = len(self.diagnostics) - 1
        if extra:
            first += f" (+{extra} more problem{'s' if extra > 1 else ''})"
        super().__init__(first)

    def render(self) -> str:
        return "\n".join(diag.render() for diag in self.diagnostics)


# ---------------------------------------------------------------------------
# Position-tracking JSON reader


class _JsonReader:
    """A minimal JSON reader that remembers where everything lives.

    Produces ``(tree, posmap)`` where ``posmap`` maps document paths —
    tuples of mapping keys and sequence indices — to 1-based
    ``(line, column)`` pairs.  Object paths anchor at the opening
    brace/bracket, field paths at their key.  Grammar and number/string
    semantics match ``json.loads`` (it is only used for values the
    stdlib parser already accepted or would accept).
    """

    def __init__(self, text: str, source: str):
        self.text = text
        self.source = source
        self.n = len(text)
        self.i = 0
        self.line = 1
        self.col = 1
        self.pos: dict[tuple, tuple[int, int]] = {}

    def fail(self, message: str) -> ScenarioError:
        return ScenarioError([
            Diagnostic(
                path="", message=message, line=self.line, column=self.col,
                source=self.source,
            )
        ])

    def _advance(self, count: int) -> None:
        for _ in range(count):
            if self.text[self.i] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.i += 1

    def _skip_ws(self) -> None:
        while self.i < self.n and self.text[self.i] in " \t\r\n":
            self._advance(1)

    def _peek(self) -> str:
        if self.i >= self.n:
            raise self.fail("unexpected end of document")
        return self.text[self.i]

    def _expect(self, char: str) -> None:
        if self.i >= self.n or self.text[self.i] != char:
            found = self.text[self.i] if self.i < self.n else "end of document"
            raise self.fail(f"expected {char!r}, found {found!r}")
        self._advance(1)

    def read_document(self):
        self._skip_ws()
        value = self._read_value(())
        self._skip_ws()
        if self.i < self.n:
            raise self.fail(
                f"trailing content after document: {self.text[self.i]!r}"
            )
        return value, self.pos

    def _read_value(self, path: tuple):
        self.pos.setdefault(path, (self.line, self.col))
        char = self._peek()
        if char == "{":
            return self._read_object(path)
        if char == "[":
            return self._read_array(path)
        if char == '"':
            return self._read_string()
        if char in "-0123456789":
            return self._read_number()
        for literal, value in (("true", True), ("false", False),
                               ("null", None)):
            if self.text.startswith(literal, self.i):
                self._advance(len(literal))
                return value
        raise self.fail(f"unexpected character {char!r}")

    def _read_object(self, path: tuple) -> dict:
        self._expect("{")
        self._skip_ws()
        record: dict = {}
        if self.i < self.n and self.text[self.i] == "}":
            self._advance(1)
            return record
        while True:
            self._skip_ws()
            key_line, key_col = self.line, self.col
            if self._peek() != '"':
                raise self.fail("object keys must be strings")
            key = self._read_string()
            if key in record:
                raise self.fail(f"duplicate key {key!r}")
            self.pos[path + (key,)] = (key_line, key_col)
            self._skip_ws()
            self._expect(":")
            self._skip_ws()
            record[key] = self._read_value(path + (key,))
            self._skip_ws()
            char = self._peek()
            if char == ",":
                self._advance(1)
                continue
            if char == "}":
                self._advance(1)
                return record
            raise self.fail(f"expected ',' or '}}', found {char!r}")

    def _read_array(self, path: tuple) -> list:
        self._expect("[")
        self._skip_ws()
        items: list = []
        if self.i < self.n and self.text[self.i] == "]":
            self._advance(1)
            return items
        while True:
            self._skip_ws()
            items.append(self._read_value(path + (len(items),)))
            self._skip_ws()
            char = self._peek()
            if char == ",":
                self._advance(1)
                continue
            if char == "]":
                self._advance(1)
                return items
            raise self.fail(f"expected ',' or ']', found {char!r}")

    def _read_string(self) -> str:
        start = self.i
        self._advance(1)
        while self.i < self.n:
            char = self.text[self.i]
            if char == "\\":
                if self.i + 1 >= self.n:
                    break
                self._advance(2)
                continue
            if char == '"':
                self._advance(1)
                raw = self.text[start:self.i]
                try:
                    return json.loads(raw)
                except json.JSONDecodeError as exc:
                    raise self.fail(f"bad string literal: {exc.msg}") from exc
            if char == "\n":
                break
            self._advance(1)
        raise self.fail("unterminated string literal")

    def _read_number(self):
        start = self.i
        while self.i < self.n and self.text[self.i] in "+-0123456789.eE":
            self._advance(1)
        raw = self.text[start:self.i]
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise self.fail(f"bad number literal {raw!r}") from exc


def _read_yaml(text: str, source: str):
    """Compose YAML into ``(tree, posmap)`` with node-mark positions."""
    import yaml

    try:
        root = yaml.compose(text, Loader=yaml.SafeLoader)
    except yaml.YAMLError as exc:
        mark = getattr(exc, "problem_mark", None)
        raise ScenarioError([
            Diagnostic(
                path="",
                message=f"YAML syntax error: {exc}".replace("\n", " "),
                line=None if mark is None else mark.line + 1,
                column=None if mark is None else mark.column + 1,
                source=source,
            )
        ]) from exc
    if root is None:
        raise ScenarioError([
            Diagnostic(path="", message="empty document", source=source)
        ])

    constructor = yaml.constructor.SafeConstructor()
    pos: dict[tuple, tuple[int, int]] = {}

    def walk(node, path: tuple):
        pos.setdefault(
            path, (node.start_mark.line + 1, node.start_mark.column + 1)
        )
        if isinstance(node, yaml.MappingNode):
            record = {}
            for key_node, value_node in node.value:
                key = constructor.construct_object(key_node, deep=True)
                if not isinstance(key, str):
                    raise ScenarioError([
                        Diagnostic(
                            path=_render_path(path),
                            message=f"mapping keys must be strings, "
                                    f"got {key!r}",
                            line=key_node.start_mark.line + 1,
                            column=key_node.start_mark.column + 1,
                            source=source,
                        )
                    ])
                if key in record:
                    raise ScenarioError([
                        Diagnostic(
                            path=_render_path(path),
                            message=f"duplicate key {key!r}",
                            line=key_node.start_mark.line + 1,
                            column=key_node.start_mark.column + 1,
                            source=source,
                        )
                    ])
                pos[path + (key,)] = (
                    key_node.start_mark.line + 1,
                    key_node.start_mark.column + 1,
                )
                record[key] = walk(value_node, path + (key,))
            return record
        if isinstance(node, yaml.SequenceNode):
            return [
                walk(item, path + (index,))
                for index, item in enumerate(node.value)
            ]
        return constructor.construct_object(node, deep=True)

    return walk(root, ()), pos


def _render_path(path: tuple) -> str:
    parts: list[str] = []
    for piece in path:
        if isinstance(piece, int):
            parts.append(f"[{piece}]")
        elif parts:
            parts.append(f".{piece}")
        else:
            parts.append(str(piece))
    return "".join(parts)


def detect_format(text: str) -> str:
    """Guess ``"json"`` or ``"yaml"`` from the document's first token."""
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        return "json" if stripped[0] in "{[" else "yaml"
    return "json"


# ---------------------------------------------------------------------------
# Shape checking


class _Shape:
    """Collects diagnostics while walking the raw tree into the model."""

    def __init__(self, pos: dict, source: str):
        self.pos = pos
        self.source = source
        self.diags: list[Diagnostic] = []

    def err(self, path: tuple, message: str) -> None:
        line, col = self.pos.get(path, (None, None))
        self.diags.append(Diagnostic(
            path=_render_path(path), message=message,
            line=line, column=col, source=self.source,
        ))

    def strict(self, path: tuple, record: dict, known: tuple) -> None:
        for key in record:
            if key not in known:
                self.err(
                    path + (key,),
                    f"unknown field {key!r} (known fields: "
                    f"{', '.join(known)})",
                )

    def _field(self, path: tuple, record: dict, key: str, kinds,
               kind_name: str, required: bool, default):
        if key not in record:
            if required:
                self.err(path, f"missing required field {key!r}")
            return default
        value = record[key]
        if isinstance(value, bool) or not isinstance(value, kinds):
            self.err(
                path + (key,),
                f"field {key!r} must be {kind_name}, "
                f"got {type(value).__name__}",
            )
            return default
        return value

    def req_str(self, path, record, key):
        return self._field(path, record, key, str, "a string", True, None)

    def opt_str(self, path, record, key, default=None):
        return self._field(path, record, key, str, "a string", False, default)

    def req_int(self, path, record, key):
        return self._field(path, record, key, int, "an integer", True, None)

    def opt_int(self, path, record, key, default=None):
        return self._field(
            path, record, key, int, "an integer", False, default
        )

    def req_num(self, path, record, key):
        value = self._field(
            path, record, key, (int, float), "a number", True, None
        )
        return None if value is None else float(value)

    def opt_num(self, path, record, key, default=None):
        value = self._field(
            path, record, key, (int, float), "a number", False, default
        )
        return value if value is default else float(value)

    def req_list(self, path, record, key):
        return self._field(path, record, key, list, "an array", True, None)

    def opt_obj(self, path, record, key):
        return self._field(path, record, key, dict, "an object", False, None)

    def req_obj(self, path, record, key):
        return self._field(path, record, key, dict, "an object", True, None)


def _build_digital(shape: _Shape, path: tuple, record: dict):
    if not isinstance(record, dict):
        shape.err(path, "digital core entries must be objects")
        return None
    shape.strict(path, record, DIGITAL_FIELDS)
    name = shape.req_str(path, record, "name")
    inputs = shape.req_int(path, record, "inputs")
    outputs = shape.req_int(path, record, "outputs")
    bidirs = shape.req_int(path, record, "bidirs")
    chains = shape.req_list(path, record, "scan_chains")
    patterns = shape.req_int(path, record, "patterns")
    power = shape.opt_int(path, record, "power", 0)
    if chains is not None:
        for index, length in enumerate(chains):
            if isinstance(length, bool) or not isinstance(length, int):
                shape.err(
                    path + ("scan_chains", index),
                    "scan chain lengths must be integers, "
                    f"got {type(length).__name__}",
                )
                chains = None
                break
    if None in (name, inputs, outputs, bidirs, chains, patterns, power):
        return None
    try:
        return DigitalCore(
            name=name, inputs=inputs, outputs=outputs, bidirs=bidirs,
            scan_chains=tuple(chains), patterns=patterns, power=power,
        )
    except ValueError as exc:
        shape.err(path, str(exc))
        return None


def _build_test(shape: _Shape, path: tuple, record: dict, extensions: list,
                core_name: str):
    if not isinstance(record, dict):
        shape.err(path, "test entries must be objects")
        return None
    name = shape.req_str(path, record, "name")
    band_low = shape.req_num(path, record, "band_low_hz")
    band_high = shape.req_num(path, record, "band_high_hz")
    sample = shape.req_num(path, record, "sample_freq_hz")
    cycles = shape.req_int(path, record, "cycles")
    tam_width = shape.req_int(path, record, "tam_width")
    resolution = shape.opt_int(path, record, "resolution_bits")
    power = shape.opt_int(path, record, "power", 0)
    pending = [
        (key, value) for key, value in record.items()
        if key not in TEST_FIELDS
    ]
    if None in (name, band_low, band_high, sample, cycles, tam_width, power):
        return None
    for key, value in pending:
        try:
            value_json = json.dumps(
                value, sort_keys=True, separators=(",", ":"),
                allow_nan=False, default=str,
            )
        except (TypeError, ValueError):
            shape.err(
                path + (key,),
                f"extension field {key!r} is not JSON-serializable",
            )
            continue
        extensions.append((core_name, name, key, value_json))
    try:
        return AnalogTest(
            name=name, band_low_hz=band_low, band_high_hz=band_high,
            sample_freq_hz=sample, cycles=cycles, tam_width=tam_width,
            resolution_bits=resolution, power=power,
        )
    except ValueError as exc:
        shape.err(path, str(exc))
        return None


def _build_analog(shape: _Shape, path: tuple, record: dict, extensions: list):
    if not isinstance(record, dict):
        shape.err(path, "analog core entries must be objects")
        return None
    shape.strict(path, record, ANALOG_FIELDS)
    name = shape.req_str(path, record, "name")
    resolution = shape.req_int(path, record, "resolution_bits")
    description = shape.opt_str(path, record, "description", name)
    tests_raw = shape.req_list(path, record, "tests")
    position = None
    if "position" in record:
        raw = record["position"]
        if (not isinstance(raw, list) or len(raw) != 2
                or any(isinstance(v, bool) or not isinstance(v, (int, float))
                       for v in raw)):
            shape.err(
                path + ("position",),
                "position must be an array of two numbers [x, y]",
            )
        else:
            position = (float(raw[0]), float(raw[1]))
    if None in (name, resolution) or tests_raw is None:
        return None
    tests = [
        _build_test(
            shape, path + ("tests", index), entry, extensions, name
        )
        for index, entry in enumerate(tests_raw)
    ]
    if any(test is None for test in tests):
        return None
    try:
        return AnalogCore(
            name=name, description=description, tests=tuple(tests),
            resolution_bits=resolution, position=position,
        )
    except ValueError as exc:
        shape.err(path, str(exc))
        return None


def _build_doc(tree, pos: dict, source: str) -> ScenarioDoc:
    shape = _Shape(pos, source)
    if not isinstance(tree, dict):
        shape.err((), "scenario document root must be an object")
        raise ScenarioError(shape.diags)
    shape.strict((), tree, ROOT_FIELDS)

    version = shape.req_int((), tree, "schema_version")
    if version is not None and version != SCHEMA_VERSION:
        shape.err(
            ("schema_version",),
            f"unsupported schema_version {version}; this build reads "
            f"version {SCHEMA_VERSION}",
        )
    name = shape.req_str((), tree, "name")
    if name is not None and not name:
        shape.err(("name",), "scenario name must be non-empty")

    soc = None
    extensions: list[tuple[str, str, str, str]] = []
    soc_record = shape.req_obj((), tree, "soc")
    if soc_record is not None:
        soc_path = ("soc",)
        shape.strict(soc_path, soc_record, SOC_FIELDS)
        soc_name = shape.req_str(soc_path, soc_record, "name")
        budget = shape.opt_int(soc_path, soc_record, "power_budget")
        digital_raw = shape._field(
            soc_path, soc_record, "digital_cores", list, "an array",
            False, [],
        )
        analog_raw = shape._field(
            soc_path, soc_record, "analog_cores", list, "an array",
            False, [],
        )
        digital = [
            _build_digital(
                shape, soc_path + ("digital_cores", index), entry
            )
            for index, entry in enumerate(digital_raw or [])
        ]
        analog = [
            _build_analog(
                shape, soc_path + ("analog_cores", index), entry, extensions
            )
            for index, entry in enumerate(analog_raw or [])
        ]
        if (soc_name is not None and digital_raw is not None
                and analog_raw is not None
                and not any(core is None for core in digital + analog)):
            try:
                soc = Soc(
                    name=soc_name,
                    digital_cores=tuple(digital),
                    analog_cores=tuple(analog),
                    power_budget=budget,
                )
            except ValueError as exc:
                shape.err(soc_path, str(exc))

    tam = None
    tam_record = shape.opt_obj((), tree, "tam")
    if tam_record is not None:
        tam_path = ("tam",)
        shape.strict(tam_path, tam_record, TAM_FIELDS)
        width = shape.opt_int(tam_path, tam_record, "width", 32)
        wt = shape.opt_num(tam_path, tam_record, "wt", 0.5)
        tam = TamConfig(width=width, wt=float(wt))

    optimizer = None
    opt_record = shape.opt_obj((), tree, "optimizer")
    if opt_record is not None:
        opt_path = ("optimizer",)
        shape.strict(opt_path, opt_record, OPTIMIZER_FIELDS)
        optimizer = OptimizerProfile(
            strategy=shape.opt_str(opt_path, opt_record, "strategy",
                                   "anneal"),
            budget=shape.opt_int(opt_path, opt_record, "budget", 200),
            search_seed=shape.opt_int(opt_path, opt_record, "search_seed", 0),
            effort=shape.opt_str(opt_path, opt_record, "effort", "medium"),
        )

    if shape.diags or soc is None:
        if not shape.diags:
            shape.err(("soc",), "scenario has no usable soc object")
        raise ScenarioError(shape.diags)
    return ScenarioDoc(
        name=name,
        soc=soc,
        schema_version=version,
        tam=tam,
        optimizer=optimizer,
        extensions=tuple(sorted(extensions)),
    )


def parse(text: str, source: str = "<scenario>",
          fmt: str | None = None) -> ScenarioDoc:
    """Parse scenario text into a :class:`ScenarioDoc`.

    ``fmt`` is ``"json"``, ``"yaml"``, or ``None`` to sniff from the
    first non-blank character.  Raises :class:`ScenarioError` with the
    full list of line-anchored diagnostics on any structural problem.
    YAML input additionally needs the optional PyYAML dependency.
    """
    resolved = fmt or detect_format(text)
    if resolved == "yaml":
        if not _model.yaml_available():
            raise ScenarioError([
                Diagnostic(
                    path="",
                    message="this looks like YAML but the optional "
                            "PyYAML dependency is not installed; "
                            "convert the scenario to JSON",
                    source=source,
                )
            ])
        tree, pos = _read_yaml(text, source)
    elif resolved == "json":
        tree, pos = _JsonReader(text, source).read_document()
    else:
        raise ValueError(f"unknown scenario format {resolved!r}")
    return _build_doc(tree, pos, source)


def parse_file(path) -> ScenarioDoc:
    """Read a scenario document from *path*.

    Dispatches on suffix: ``.soc`` files go through the ITC'02 dialect
    front-end (:func:`repro.soc.itc02.loads_scenario`), ``.yaml`` /
    ``.yml`` force the YAML reader, and everything else is sniffed
    (canonically JSON).
    """
    import os

    text = open(path, "r", encoding="utf-8").read()
    source = os.fspath(path)
    suffix = os.path.splitext(source)[1].lower()
    if suffix == ".soc":
        from ..soc import itc02

        return itc02.loads_scenario(text, source=source)
    if suffix in (".yaml", ".yml"):
        return parse(text, source=source, fmt="yaml")
    return parse(text, source=source, fmt=None)
