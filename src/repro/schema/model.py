"""The canonical scenario data model (``ScenarioDoc`` v1).

A *scenario document* is the serializable description of one planning
scenario: the SOC (digital cores, analog cores with their tests, power
ratings, an optional SOC-level power budget), an optional TAM
configuration block, and an optional optimizer profile.  It is the
lingua franca of the whole stack — the ITC'02 dialect front-end
(:mod:`repro.soc.itc02`), the workload registry
(:mod:`repro.workloads.registry`), the sweep engine, the server's job
specs, and the ``repro scenario`` CLI all speak it.

Strictness contract (the ipcraft split):

* **Strict objects** — the document root, ``soc``, each digital core,
  each analog core, ``tam``, and ``optimizer`` reject unknown fields
  with a line-anchored diagnostic.  A typo'd field name is an error,
  never silently ignored.
* **Lenient leaf objects** — ``tests`` entries accept unknown fields
  and *preserve* them: extension fields survive a
  parse → generate round-trip byte-exactly (they are stored on
  :attr:`ScenarioDoc.extensions` in canonical JSON form).  This is the
  vendor-extension point for annotating real ITC'02-derived corpora.

Versioning rule: ``schema_version`` is required and must equal
:data:`SCHEMA_VERSION`.  Additive, backward-compatible changes (new
*optional* strict fields, new extension conventions) keep the version;
anything that changes the meaning of an existing field bumps it, and
the parser rejects documents from the future by name rather than
misreading them.

:func:`generate` emits **canonical JSON**: fixed field order, 2-space
indent, optional fields omitted at their defaults, floats in ``repr``
form.  ``generate(parse(text))`` is a fixed point — parsing canonical
output and generating again is byte-identical, which is what the
content-hash job coalescing keys on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..soc.model import AnalogCore, AnalogTest, DigitalCore, Soc

__all__ = [
    "SCHEMA_VERSION",
    "OptimizerProfile",
    "ScenarioDoc",
    "TamConfig",
    "generate",
    "to_canonical_dict",
    "validate",
    "yaml_available",
]

#: The one document version this reader/writer speaks.
SCHEMA_VERSION = 1

#: Known field names of each strict object (everything else errors)
#: and of the lenient ``tests`` leaves (everything else is an
#: extension).  Exposed for the parser and for documentation tests.
ROOT_FIELDS = ("schema_version", "name", "soc", "tam", "optimizer")
SOC_FIELDS = ("name", "power_budget", "digital_cores", "analog_cores")
DIGITAL_FIELDS = (
    "name", "inputs", "outputs", "bidirs", "scan_chains", "patterns",
    "power",
)
ANALOG_FIELDS = (
    "name", "description", "resolution_bits", "position", "tests",
)
TEST_FIELDS = (
    "name", "band_low_hz", "band_high_hz", "sample_freq_hz", "cycles",
    "tam_width", "resolution_bits", "power",
)
TAM_FIELDS = ("width", "wt")
OPTIMIZER_FIELDS = ("strategy", "budget", "search_seed", "effort")


def yaml_available() -> bool:
    """Whether the optional PyYAML extra is importable."""
    try:
        import yaml  # noqa: F401
    except ImportError:
        return False
    return True


@dataclass(frozen=True)
class TamConfig:
    """The scenario's TAM block: width and the cost weight it suggests.

    Advisory defaults for jobs built from the document (``repro submit
    --scenario`` fills unspecified spec fields from here); semantic
    checks — width feasibility against the analog tests' fixed TAM
    requirements — live in :func:`validate` so they collect alongside
    other diagnostics instead of raising one at a time.
    """

    width: int = 32
    wt: float = 0.5

    def to_dict(self) -> dict:
        return {"width": self.width, "wt": self.wt}


@dataclass(frozen=True)
class OptimizerProfile:
    """The scenario's optional optimizer profile.

    Names the anytime strategy, its evaluation budget, the search RNG
    seed, and the packer effort tier to use when a job built from this
    document does not say otherwise.
    """

    strategy: str = "anneal"
    budget: int = 200
    search_seed: int = 0
    effort: str = "medium"

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "budget": self.budget,
            "search_seed": self.search_seed,
            "effort": self.effort,
        }


@dataclass(frozen=True)
class ScenarioDoc:
    """One versioned scenario document.

    :param name: document name; doubles as the workload label of jobs
        submitted from this document.
    :param soc: the fully-instantiated SOC the document describes.
    :param schema_version: must equal :data:`SCHEMA_VERSION`.
    :param tam: optional TAM configuration block.
    :param optimizer: optional optimizer profile.
    :param extensions: preserved unknown fields of the lenient ``tests``
        leaves, as sorted ``(core_name, test_name, key, value_json)``
        tuples where ``value_json`` is the canonical JSON text of the
        extension value.  Kept out of :class:`~repro.soc.model.Soc`
        (the runtime model ignores them) but re-emitted by
        :func:`generate` so round-trips are exact.
    """

    name: str
    soc: Soc
    schema_version: int = SCHEMA_VERSION
    tam: TamConfig | None = None
    optimizer: OptimizerProfile | None = None
    extensions: tuple[tuple[str, str, str, str], ...] = ()

    def build(self) -> Soc:
        """The runtime SOC of this scenario (what the planners consume)."""
        return self.soc

    @classmethod
    def from_soc(
        cls,
        soc: Soc,
        name: str | None = None,
        tam: TamConfig | None = None,
        optimizer: OptimizerProfile | None = None,
    ) -> "ScenarioDoc":
        """Wrap a runtime SOC as a (validated, extension-free) document."""
        return cls(
            name=name or soc.name,
            soc=soc,
            tam=tam,
            optimizer=optimizer,
        )


def _test_dict(
    core: AnalogCore,
    test: AnalogTest,
    extensions: dict[tuple[str, str], list[tuple[str, str]]],
) -> dict:
    record: dict = {
        "name": test.name,
        "band_low_hz": float(test.band_low_hz),
        "band_high_hz": float(test.band_high_hz),
        "sample_freq_hz": float(test.sample_freq_hz),
        "cycles": test.cycles,
        "tam_width": test.tam_width,
    }
    if test.resolution_bits is not None:
        record["resolution_bits"] = test.resolution_bits
    if test.power:
        record["power"] = test.power
    for key, value_json in extensions.get((core.name, test.name), ()):
        record[key] = json.loads(value_json)
    return record


def to_canonical_dict(doc: ScenarioDoc) -> dict:
    """The document as a plain dict in canonical field order.

    Optional fields are omitted at their defaults (``power`` 0,
    ``resolution_bits``/``position``/``power_budget`` absent,
    ``description`` equal to the core name), so the canonical form is
    minimal and :func:`generate` is idempotent.
    """
    extensions: dict[tuple[str, str], list[tuple[str, str]]] = {}
    for core_name, test_name, key, value_json in sorted(doc.extensions):
        extensions.setdefault((core_name, test_name), []).append(
            (key, value_json)
        )

    soc = doc.soc
    soc_record: dict = {"name": soc.name}
    if soc.power_budget is not None:
        soc_record["power_budget"] = soc.power_budget
    digital = []
    for core in soc.digital_cores:
        record: dict = {
            "name": core.name,
            "inputs": core.inputs,
            "outputs": core.outputs,
            "bidirs": core.bidirs,
            "scan_chains": list(core.scan_chains),
            "patterns": core.patterns,
        }
        if core.power:
            record["power"] = core.power
        digital.append(record)
    analog = []
    for core in soc.analog_cores:
        record = {"name": core.name}
        if core.description != core.name:
            record["description"] = core.description
        record["resolution_bits"] = core.resolution_bits
        if core.position is not None:
            record["position"] = [
                float(core.position[0]), float(core.position[1])
            ]
        record["tests"] = [
            _test_dict(core, test, extensions) for test in core.tests
        ]
        analog.append(record)
    soc_record["digital_cores"] = digital
    soc_record["analog_cores"] = analog

    record = {
        "schema_version": doc.schema_version,
        "name": doc.name,
        "soc": soc_record,
    }
    if doc.tam is not None:
        record["tam"] = doc.tam.to_dict()
    if doc.optimizer is not None:
        record["optimizer"] = doc.optimizer.to_dict()
    return record


def generate(doc: ScenarioDoc, fmt: str = "json") -> str:
    """Serialize *doc* to canonical text.

    ``fmt="json"`` (the default) is the canonical byte form: the
    content-hash coalescing keys and the shipped preset documents are
    defined over it, and ``generate(parse(generate(doc)))`` is
    byte-identical.  ``fmt="yaml"`` needs the optional PyYAML extra and
    is a human-friendly alternative with the same field order (YAML
    output is *not* the canonical byte form — it canonicalizes by
    parsing and re-generating as JSON).

    :raises ValueError: unknown format, or YAML requested without
        PyYAML installed.
    """
    record = to_canonical_dict(doc)
    if fmt == "json":
        return json.dumps(record, indent=2, allow_nan=False) + "\n"
    if fmt == "yaml":
        if not yaml_available():
            raise ValueError(
                "YAML output needs the optional PyYAML dependency "
                "(the core schema is stdlib-only; install pyyaml or "
                "use fmt='json')"
            )
        import yaml

        return yaml.safe_dump(record, sort_keys=False)
    raise ValueError(f"unknown scenario format {fmt!r} (json or yaml)")


def validate(doc: ScenarioDoc) -> tuple:
    """Semantic validation beyond shape: collected diagnostics.

    The structural layer (:func:`repro.schema.parse`) already enforces
    types, strictness, and the :class:`~repro.soc.model.Soc`
    invariants; this pass checks the cross-field rules that need the
    whole document — version pinning, TAM feasibility against the
    analog tests' fixed widths, optimizer profile names, extension
    references.  Returns a (possibly empty) tuple of
    :class:`~repro.schema.parse.Diagnostic`; an empty result means the
    document is valid.
    """
    from .parse import Diagnostic

    diags: list[Diagnostic] = []

    def err(path: str, message: str) -> None:
        diags.append(Diagnostic(path=path, message=message))

    if doc.schema_version != SCHEMA_VERSION:
        err(
            "schema_version",
            f"unsupported schema_version {doc.schema_version!r}; this "
            f"build reads version {SCHEMA_VERSION}",
        )
    if not doc.name or not isinstance(doc.name, str):
        err("name", "scenario name must be a non-empty string")
    if doc.tam is not None:
        if doc.tam.width < 1:
            err("tam.width", f"width must be >= 1, got {doc.tam.width}")
        if not 0 <= doc.tam.wt <= 1:
            err("tam.wt", f"wt must lie in [0, 1], got {doc.tam.wt}")
        else:
            for core in doc.soc.analog_cores:
                for test in core.tests:
                    if test.tam_width > doc.tam.width >= 1:
                        err(
                            "tam.width",
                            f"analog test {core.name}.{test.name} needs "
                            f"{test.tam_width} TAM wires but tam.width "
                            f"is {doc.tam.width}",
                        )
    if doc.optimizer is not None:
        profile = doc.optimizer
        if profile.budget < 1:
            err(
                "optimizer.budget",
                f"budget must be >= 1, got {profile.budget}",
            )
        if profile.search_seed < 0:
            err(
                "optimizer.search_seed",
                f"search_seed must be >= 0, got {profile.search_seed}",
            )
        from ..experiments.common import PACK_EFFORT

        if profile.effort not in PACK_EFFORT:
            err(
                "optimizer.effort",
                f"unknown effort {profile.effort!r}, pick from "
                f"{sorted(PACK_EFFORT)}",
            )
        from ..search import registry as search_registry

        if profile.strategy not in search_registry.strategy_names():
            err(
                "optimizer.strategy",
                f"unknown strategy {profile.strategy!r}, pick from "
                f"{', '.join(search_registry.strategy_names())}",
            )
    known_tests = {
        (core.name, test.name)
        for core in doc.soc.analog_cores
        for test in core.tests
    }
    for core_name, test_name, key, _value in doc.extensions:
        if (core_name, test_name) not in known_tests:
            err(
                "extensions",
                f"extension field {key!r} references unknown test "
                f"{core_name}.{test_name}",
            )
    return tuple(diags)
