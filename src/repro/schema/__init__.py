"""``repro.schema`` — the canonical typed scenario model.

Public surface:

* :class:`ScenarioDoc` / :class:`TamConfig` / :class:`OptimizerProfile`
  — the versioned dataclass model (v1).
* :func:`parse` / :func:`parse_file` — position-aware readers (JSON
  stdlib-only; YAML when PyYAML is importable; ``.soc`` files via the
  ITC'02 front-end).
* :func:`validate` — semantic cross-checks, returning collected
  :class:`Diagnostic` records instead of stopping at the first.
* :func:`generate` — canonical serialization; ``generate(parse(x))``
  is a byte-level fixed point.
* :func:`canonical_scenario` — the parse → validate → generate pipeline
  used by job specs and the cache keys, memoized on the raw text.
"""

from __future__ import annotations

from functools import lru_cache

from .model import (
    SCHEMA_VERSION,
    OptimizerProfile,
    ScenarioDoc,
    TamConfig,
    generate,
    to_canonical_dict,
    validate,
    yaml_available,
)
from .parse import Diagnostic, ScenarioError, detect_format, parse, parse_file

__all__ = [
    "SCHEMA_VERSION",
    "Diagnostic",
    "OptimizerProfile",
    "ScenarioDoc",
    "ScenarioError",
    "TamConfig",
    "canonical_scenario",
    "detect_format",
    "generate",
    "parse",
    "parse_file",
    "to_canonical_dict",
    "validate",
    "yaml_available",
]


@lru_cache(maxsize=256)
def canonical_scenario(text: str) -> tuple[ScenarioDoc, str]:
    """Parse, validate, and canonicalize scenario *text*.

    Returns ``(doc, canonical_json)``.  The canonical text is what job
    specs store and hash, so two submissions of the same scenario —
    whether hand-formatted JSON, YAML, or a shipped preset file —
    coalesce onto one job.  Raises :class:`ScenarioError` (with all
    collected diagnostics) if the document is malformed or fails
    semantic validation.
    """
    doc = parse(text)
    problems = validate(doc)
    if problems:
        raise ScenarioError(problems)
    return doc, generate(doc)
