"""The seed rectangle packer, retained as an executable specification.

This module preserves the original (pre-optimization) evaluation path
verbatim: a list-insert breakpoint profile, per-candidate schedule
validation, and no cross-trial reuse.  It exists for two consumers:

* the **golden-parity tests** pin the fast engine
  (:mod:`repro.tam.packing`) to byte-identical makespans against this
  implementation on every registered workload preset;
* the **evaluation benchmark** (``benchmarks/bench_eval.py``) measures
  the fast engine's speedup against it, which is the throughput gate
  recorded in ``BENCH_eval.json``.

Do not optimize this module — its slowness is the point.  The public
packer lives in :mod:`repro.tam.packing`; nothing outside tests,
benchmarks, and the evaluator's ``engine="reference"`` escape hatch
should import it.
"""

from __future__ import annotations

import bisect
import random
from collections.abc import Iterable, Sequence

from .model import TamTask
from .packing import PRIORITY_RULES, InfeasibleError, _by_area
from .schedule import Schedule, ScheduledTest

__all__ = ["ReferenceProfile", "reference_pack", "reference_pack_with_order"]


class ReferenceProfile:
    """The seed breakpoint profile (pre-skyline).

    The power dimension mirrors the production profile with the same
    deliberately naive structure: a second parallel per-region array,
    re-scanned per candidate, no cross-query reuse.
    """

    def __init__(self, capacity: int, power_budget: int | None = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.power_budget = power_budget
        self._times: list[int] = [0]
        self._used: list[int] = [0]
        self._power: list[int] = [0]

    def min_free(self, start: int, end: int) -> int:
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        index = bisect.bisect_right(self._times, start) - 1
        worst = self._used[index]
        index += 1
        while index < len(self._times) and self._times[index] < end:
            worst = max(worst, self._used[index])
            index += 1
        return self.capacity - worst

    def max_power(self, start: int, end: int) -> int:
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        index = bisect.bisect_right(self._times, start) - 1
        worst = self._power[index]
        index += 1
        while index < len(self._times) and self._times[index] < end:
            worst = max(worst, self._power[index])
            index += 1
        return worst

    def fits(self, start: int, end: int, width: int, power: int = 0) -> bool:
        if self.min_free(start, end) < width:
            return False
        if self.power_budget is not None and power:
            return self.max_power(start, end) + power <= self.power_budget
        return True

    def add(self, start: int, end: int, width: int, power: int = 0) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if not self.fits(start, end, width, power):
            raise ValueError(
                f"rectangle [{start}, {end}) x {width} (power {power}) "
                f"exceeds capacity {self.capacity} / budget "
                f"{self.power_budget}"
            )
        self._insert_breakpoint(start)
        self._insert_breakpoint(end)
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        for i in range(lo, hi):
            self._used[i] += width
            self._power[i] += power

    def _insert_breakpoint(self, t: int) -> None:
        index = bisect.bisect_left(self._times, t)
        if index < len(self._times) and self._times[index] == t:
            return
        self._times.insert(index, t)
        self._used.insert(index, self._used[index - 1])
        self._power.insert(index, self._power[index - 1])

    def earliest_fit(
        self, not_before: int, duration: int, width: int, power: int = 0
    ) -> int:
        if width > self.capacity:
            raise ValueError(
                f"width {width} exceeds TAM capacity {self.capacity}"
            )
        if self.power_budget is not None and power > self.power_budget:
            raise ValueError(
                f"power {power} exceeds budget {self.power_budget}"
            )
        constrained = self.power_budget is not None and power

        def blocked(index: int) -> bool:
            if self._used[index] + width > self.capacity:
                return True
            return bool(
                constrained
                and self._power[index] + power > self.power_budget
            )

        candidate = not_before
        while True:
            if self.fits(candidate, candidate + duration, width, power):
                return candidate
            index = bisect.bisect_right(self._times, candidate) - 1
            advanced = None
            while index < len(self._times):
                if blocked(index):
                    if index + 1 < len(self._times):
                        advanced = self._times[index + 1]
                    else:
                        raise AssertionError(
                            "profile blocked in its final region"
                        )
                    break
                index += 1
            if advanced is None or advanced <= candidate:
                raise AssertionError("earliest_fit failed to advance")
            candidate = advanced


def reference_pack_with_order(
    tasks: Sequence[TamTask],
    width: int,
    order: Sequence[TamTask],
    power_budget: int | None = None,
) -> Schedule:
    """The seed ``pack_with_order``: place and validate one order."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if {t.name for t in order} != {t.name for t in tasks} or len(order) != len(
        tasks
    ):
        raise ValueError("order must be a permutation of tasks")

    profile = ReferenceProfile(width, power_budget)
    group_ready: dict[str, int] = {}
    items: list[ScheduledTest] = []
    for task in order:
        feasible = task.options_within(width, power_budget)
        if not feasible:
            if power_budget is not None and task.options_within(width):
                raise InfeasibleError(
                    f"task {task.name!r} draws more than the power "
                    f"budget {power_budget} at every option fitting "
                    f"width {width}"
                )
            raise InfeasibleError(
                f"task {task.name!r} needs {task.min_width} wires, TAM "
                f"has only {width}"
            )
        not_before = 0
        if task.group is not None:
            not_before = group_ready.get(task.group, 0)
        best: tuple[int, int, int] | None = None
        best_option = None
        for option in feasible:
            start = profile.earliest_fit(
                not_before, option.time, option.width, option.power
            )
            key = (start + option.time, option.width, start)
            if best is None or key < best:
                best = key
                best_option = option
        assert best is not None and best_option is not None
        finish, _, start = best
        profile.add(start, finish, best_option.width, best_option.power)
        if task.group is not None:
            group_ready[task.group] = finish
        items.append(ScheduledTest(task=task, start=start, option=best_option))

    schedule = Schedule(
        width=width, items=tuple(items), power_budget=power_budget
    )
    schedule.validate()
    return schedule


def reference_pack(
    tasks: Iterable[TamTask],
    width: int,
    rules: Sequence[str] = (
        "area",
        "time",
        "width",
        "groups_first",
        "rigid_wide_first",
    ),
    shuffles: int = 8,
    improvement_passes: int = 3,
    power_budget: int | None = None,
) -> Schedule:
    """The seed ``pack``: every order packed from scratch and validated."""
    task_list = list(tasks)
    if not task_list:
        return Schedule(width=width, items=(), power_budget=power_budget)

    best: Schedule | None = None

    def consider(order: Sequence[TamTask]) -> None:
        nonlocal best
        candidate = reference_pack_with_order(
            task_list, width, order, power_budget
        )
        if best is None or candidate.makespan < best.makespan:
            best = candidate

    for rule in rules:
        consider(sorted(task_list, key=PRIORITY_RULES[rule]))

    rng = random.Random(0)
    base = sorted(task_list, key=_by_area)
    for _ in range(shuffles):
        keys = {t.name: i + rng.uniform(0, len(base) / 2)
                for i, t in enumerate(base)}
        consider(sorted(base, key=lambda t: keys[t.name]))

    assert best is not None
    for _ in range(improvement_passes):
        previous = best.makespan
        start_of = {item.task.name: item.start for item in best.items}
        consider(sorted(task_list, key=lambda t: (start_of[t.name], t.name)))
        if best.makespan >= previous:
            break
    return best
