"""TAM scheduling: rectangle packing with shared-wrapper serialization.

Public surface:

* :func:`~repro.tam.packing.pack` — the greedy flexible-width packer;
* :func:`~repro.tam.builder.soc_tasks` — SOC + sharing partition → tasks;
* :func:`~repro.tam.branch_bound.optimal_schedule` — exact baseline;
* :func:`~repro.tam.lower_bound.makespan_lower_bound` — admissible bound;
* :func:`~repro.tam.gantt.render_gantt` — ASCII visualization.
"""

from .branch_bound import optimal_makespan, optimal_schedule
from .builder import analog_tasks, digital_tasks, group_of_core, soc_tasks
from .fixed_partition import (
    FixedPartitionResult,
    fixed_partition_pack,
    width_splits,
)
from .gantt import render_gantt
from .lower_bound import (
    critical_task_bound,
    makespan_lower_bound,
    power_volume_bound,
    serialization_bound,
    volume_bound,
)
from .model import TamTask, WidthOption
from .packing import (
    DEFAULT_RULES,
    PRIORITY_RULES,
    InfeasibleError,
    PackContext,
    PackStats,
    pack,
    pack_with_order,
)
from .profile import CapacityProfile
from .schedule import Schedule, ScheduledTest, ScheduleError
from .wires import WireAssignmentError, assign_wires, render_wire_map

__all__ = [
    "CapacityProfile",
    "DEFAULT_RULES",
    "FixedPartitionResult",
    "InfeasibleError",
    "PRIORITY_RULES",
    "PackContext",
    "PackStats",
    "fixed_partition_pack",
    "width_splits",
    "Schedule",
    "ScheduleError",
    "ScheduledTest",
    "TamTask",
    "WidthOption",
    "WireAssignmentError",
    "analog_tasks",
    "assign_wires",
    "render_wire_map",
    "critical_task_bound",
    "digital_tasks",
    "group_of_core",
    "makespan_lower_bound",
    "optimal_makespan",
    "optimal_schedule",
    "pack",
    "pack_with_order",
    "power_volume_bound",
    "render_gantt",
    "serialization_bound",
    "soc_tasks",
    "volume_bound",
]
