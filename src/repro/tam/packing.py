"""Greedy flexible-width rectangle packing for TAM scheduling.

The paper's test planner uses the rectangle-packing TAM optimization of
Iyengar, Chakrabarty and Marinissen (VTS'02).  This module implements a
deterministic greedy packer in that spirit:

1. order the tasks by a priority rule (largest minimum area first by
   default);
2. place each task at the earliest feasible start, choosing the Pareto
   operating point that minimizes its *finish* time — wide points start
   later but run shorter, narrow points squeeze into earlier gaps;
3. serialization groups (cores sharing an analog wrapper) constrain each
   member to start after the group's previously placed members finish.

Because greedy packing is order-sensitive, :func:`pack` tries several
priority rules and keeps the best makespan.  The engine is built for
the evaluation hot path — :class:`PackContext` is the fast path the
schedule evaluator reuses across sharing partitions:

* the order enumeration (rules + seeded shuffles) is computed once;
* the placement trajectory of the *reference* grouping (each analog
  core serializing only with itself — common to every partition) is
  cached per order, and each partition call replays the longest prefix
  on which its coarser groups cannot yet have bound, via the profile's
  bulk-add;
* order trials abort as soon as their running makespan can no longer
  beat the incumbent, and the whole trial loop stops early once the
  incumbent hits the analytic makespan lower bound;
* only the winning schedule is validated (set ``REPRO_VALIDATE_ALL=1``
  to re-validate every completed candidate, the paranoid CI mode).

All of this is *exact*: the returned schedule is identical to packing
every order from scratch and keeping the strictly-best makespan, which
golden-parity tests pin against the retained seed implementation in
:mod:`repro.tam.reference`.

With a ``power_budget``, every layer additionally enforces the
instantaneous power ceiling: infeasible operating points are filtered
up front, placements query the profile's two-ceiling
:meth:`~repro.tam.profile.CapacityProfile.earliest_fit`, the analytic
stop bound includes the power-volume term, and the returned schedule
carries (and re-validates) the budget.  ``power_budget=None`` leaves
every placement byte-identical to the unconstrained packer.
"""

from __future__ import annotations

import os
import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from dataclasses import fields as dataclass_fields

from .. import obs
from .lower_bound import makespan_lower_bound
from .model import TamTask, WidthOption
from .profile import CapacityProfile, FitStats
from .schedule import Schedule, ScheduledTest

__all__ = [
    "pack",
    "pack_with_order",
    "PackContext",
    "PackStats",
    "InfeasibleError",
    "PRIORITY_RULES",
    "DEFAULT_RULES",
]

#: Environment variable enabling per-candidate validation (CI paranoia).
VALIDATE_ALL_ENV = "REPRO_VALIDATE_ALL"


class InfeasibleError(ValueError):
    """Raised when a task cannot fit on the TAM at any operating point."""


def _by_area(task: TamTask) -> tuple:
    return (-task.min_area, task.name)


def _by_time(task: TamTask) -> tuple:
    return (-task.min_time, task.name)


def _by_width(task: TamTask) -> tuple:
    return (-task.min_width, -task.min_area, task.name)


def _groups_first(task: TamTask) -> tuple:
    return (task.group is None, -task.min_area, task.name)


def _rigid_wide_first(task: TamTask) -> tuple:
    # wide rigid rectangles fragment the TAM badly when placed late;
    # front-load them, then flexible tasks by area
    return (
        not (task.is_rigid and task.min_width > 1),
        -task.min_width if task.is_rigid else 0,
        -task.min_area,
        task.name,
    )


#: Priority rules tried by :func:`pack`, by name.
PRIORITY_RULES = {
    "area": _by_area,
    "time": _by_time,
    "width": _by_width,
    "groups_first": _groups_first,
    "rigid_wide_first": _rigid_wide_first,
}

#: The rule set :func:`pack` tries by default.
DEFAULT_RULES = (
    "area",
    "time",
    "width",
    "groups_first",
    "rigid_wide_first",
)


def _feasible_options(
    tasks: Sequence[TamTask], width: int, power_budget: int | None = None
) -> dict[str, tuple[WidthOption, ...]]:
    """Per task: the operating points fitting a width-``width`` TAM
    (and, when budgeted, drawing at most *power_budget*).

    :raises InfeasibleError: if some task has none.
    """
    feasible: dict[str, tuple[WidthOption, ...]] = {}
    for task in tasks:
        options = task.options_within(width, power_budget)
        if not options:
            if not task.options_within(width):
                raise InfeasibleError(
                    f"task {task.name!r} needs {task.min_width} wires, "
                    f"TAM has only {width}"
                )
            raise InfeasibleError(
                f"task {task.name!r} draws more than the power budget "
                f"{power_budget} at every option fitting width {width}"
            )
        feasible[task.name] = options
    return feasible


def _place_order(
    order: Sequence[TamTask],
    feasible: dict[str, tuple[WidthOption, ...]],
    profile: CapacityProfile,
    items: list[ScheduledTest],
    group_ready: dict[str, int],
    abort_at: int | None = None,
    running_max: int = 0,
) -> int | None:
    """Place *order* onto *profile*, appending to *items*.

    Returns the resulting maximum finish (>= *running_max*), or ``None``
    once any placed finish reaches *abort_at* — the placement of each
    task is order-deterministic, so a complete schedule from this order
    could never have a smaller makespan.
    """
    earliest_fit = profile.earliest_fit
    add = profile._add_fast
    for task in order:
        not_before = 0
        if task.group is not None:
            not_before = group_ready.get(task.group, 0)
        best: tuple[int, int, int] | None = None
        best_option = None
        for option in feasible[task.name]:
            start = earliest_fit(
                not_before, option.time, option.width, option.power
            )
            key = (start + option.time, option.width, start)
            if best is None or key < best:
                best = key
                best_option = option
        finish, _, start = best
        if abort_at is not None and finish >= abort_at:
            return None
        add(start, finish, best_option.width, best_option.power)
        if task.group is not None:
            group_ready[task.group] = finish
        items.append(ScheduledTest(task=task, start=start, option=best_option))
        if finish > running_max:
            running_max = finish
    return running_max


def pack_with_order(
    tasks: Sequence[TamTask],
    width: int,
    order: Sequence[TamTask],
    power_budget: int | None = None,
) -> Schedule:
    """Pack *tasks* on a width-``width`` TAM in the given placement order.

    Each task is placed at the earliest feasible start over all its
    operating points that fit the TAM (and the *power_budget*, when
    given), choosing the point with the earliest finish (ties: narrower
    width, then earlier start).

    :raises InfeasibleError: if some task is wider than the TAM even at
        its narrowest operating point, or has no point within the
        power budget.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if {t.name for t in order} != {t.name for t in tasks} or len(order) != len(
        tasks
    ):
        raise ValueError("order must be a permutation of tasks")
    feasible = _feasible_options(tasks, width, power_budget)
    items: list[ScheduledTest] = []
    _place_order(
        order, feasible, CapacityProfile(width, power_budget), items, {}
    )
    schedule = Schedule(
        width=width, items=tuple(items), power_budget=power_budget
    )
    schedule.validate()
    return schedule


@dataclass
class PackStats:
    """Cumulative hot-path counters of one :class:`PackContext`."""

    #: partition pack calls served
    packs: int = 0
    #: order trials started (rules + shuffles + improvement passes)
    orders_tried: int = 0
    #: order trials aborted early against the incumbent makespan
    orders_pruned: int = 0
    #: trial loops cut short because the incumbent hit the lower bound
    lb_stops: int = 0
    #: placements replayed from a cached reference trajectory
    prefix_placements: int = 0
    #: placements computed the slow way (profile search per option)
    fresh_placements: int = 0

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready)."""
        return {
            "packs": self.packs,
            "orders_tried": self.orders_tried,
            "orders_pruned": self.orders_pruned,
            "lb_stops": self.lb_stops,
            "prefix_placements": self.prefix_placements,
            "fresh_placements": self.fresh_placements,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PackStats":
        """Inverse of :meth:`to_dict` (unknown keys ignored, so older
        serialized stats load fine)."""
        names = {f.name for f in dataclass_fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})

    def merge(self, other: "PackStats") -> "PackStats":
        """Fold *other*'s counters into this one; returns self.

        This is how per-worker packer stats survive their process:
        each worker ships its stats dict home and the parent sums them
        into one aggregate.
        """
        for field in dataclass_fields(self):
            setattr(
                self, field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return self

    def __iadd__(self, other: "PackStats") -> "PackStats":
        return self.merge(other)


class PackContext:
    """Reusable fast-path packer for one invariant rectangle set.

    Built once per (task geometry, TAM width); :meth:`pack` is then
    called once per sharing partition with tasks of identical geometry
    (same names and operating points) whose serialization groups
    *coarsen* the reference grouping — every reference group maps whole
    into one call group, exactly the relation between per-core analog
    wrappers and any sharing partition.  Calls with the same grouping
    as the reference, or with an unrelated grouping, are also accepted;
    they simply skip the trajectory reuse.

    :param tasks: the reference task set (the finest grouping, e.g.
        digital cores plus per-core analog wrappers).
    :param width: SOC-level TAM width ``W``.
    :param rules: names from :data:`PRIORITY_RULES` to try.
    :param shuffles: number of seeded random restarts (0 disables).
    :param improvement_passes: maximum reschedule iterations.
    :param power_budget: instantaneous power ceiling every placement
        must respect (``None`` = unconstrained).
    """

    def __init__(
        self,
        tasks: Sequence[TamTask],
        width: int,
        rules: Sequence[str] = DEFAULT_RULES,
        shuffles: int = 8,
        improvement_passes: int = 3,
        power_budget: int | None = None,
    ):
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.width = width
        self.power_budget = power_budget
        self.improvement_passes = improvement_passes
        self._reference = list(tasks)
        self._names = tuple(t.name for t in self._reference)
        if len(set(self._names)) != len(self._names):
            raise ValueError("duplicate task names")
        self._name_set = frozenset(self._names)
        self._ref_group = {t.name: t.group for t in self._reference}
        self._feasible = _feasible_options(
            self._reference, width, power_budget
        )
        self._orders = self._enumerate_orders(rules, shuffles)
        # per order index: the reference-grouping placement trajectory
        # as (name, start, end, width, option) tuples, built lazily
        self._trajectories: list[
            tuple[tuple[str, int, int, int, WidthOption], ...] | None
        ] = [None] * len(self._orders)
        self.stats = PackStats()
        # skyline-walk counters only exist under telemetry; with it
        # off every profile keeps ``stats is None`` (one dead branch
        # per earliest_fit, nothing else)
        self.fit_stats: FitStats | None = \
            FitStats() if obs.state() is not None else None

    def _enumerate_orders(
        self, rules: Sequence[str], shuffles: int
    ) -> list[tuple[str, ...]]:
        """Rule orders plus seeded biased shuffles, as name tuples.

        Every priority rule is a pure function of task geometry and
        group *presence* (never the label), so one enumeration serves
        all partitions.  The base enumeration for the biased shuffles
        is computed once; only the per-shuffle random keys differ.
        """
        orders = [
            tuple(
                t.name
                for t in sorted(self._reference, key=PRIORITY_RULES[rule])
            )
            for rule in rules
        ]
        rng = random.Random(0)
        base = [t.name for t in sorted(self._reference, key=_by_area)]
        half = len(base) / 2
        for _ in range(shuffles):
            # biased shuffle: perturb the area order with random keys so
            # large tasks still tend to go first
            keys = {name: i + rng.uniform(0, half)
                    for i, name in enumerate(base)}
            orders.append(tuple(sorted(base, key=keys.__getitem__)))
        return orders

    def _profile(self) -> CapacityProfile:
        """A fresh packing profile, wired to the telemetry sink when
        one exists."""
        profile = CapacityProfile(self.width, self.power_budget)
        if self.fit_stats is not None:
            profile.stats = self.fit_stats
        return profile

    def _trajectory(
        self, index: int
    ) -> tuple[tuple[str, int, int, int, WidthOption], ...]:
        """The cached reference placement of order *index* (lazy)."""
        cached = self._trajectories[index]
        if cached is not None:
            return cached
        by_name = {t.name: t for t in self._reference}
        order = [by_name[name] for name in self._orders[index]]
        items: list[ScheduledTest] = []
        self.stats.fresh_placements += len(order)
        _place_order(order, self._feasible, self._profile(), items, {})
        trajectory = tuple(
            (it.task.name, it.start, it.finish, it.width, it.option)
            for it in items
        )
        self._trajectories[index] = trajectory
        return trajectory

    def _coarsens(self, by_name: dict[str, TamTask]) -> bool:
        """Whether the call grouping coarsens the reference grouping."""
        merged: dict[str, str] = {}
        for name, ref_group in self._ref_group.items():
            call_group = by_name[name].group
            if ref_group is None:
                if call_group is not None:
                    return False
                continue
            if call_group is None:
                return False
            known = merged.setdefault(ref_group, call_group)
            if known != call_group:
                return False
        return True

    def _try_order_fresh(
        self,
        order: Sequence[TamTask],
        incumbent: int | None,
    ) -> tuple[int, list[ScheduledTest]] | None:
        """One order trial with no trajectory reuse."""
        self.stats.orders_tried += 1
        items: list[ScheduledTest] = []
        self.stats.fresh_placements += len(order)
        makespan = _place_order(
            order, self._feasible, self._profile(), items, {},
            abort_at=incumbent,
        )
        if makespan is None:
            self.stats.orders_pruned += 1
            return None
        return makespan, items

    def _try_order_prefixed(
        self,
        index: int,
        by_name: dict[str, TamTask],
        incumbent: int | None,
    ) -> tuple[int, list[ScheduledTest]] | None:
        """One order trial replaying the reference-trajectory prefix.

        The call's groups are unions of reference groups, so until a
        task's *call* group has accumulated a later ready time than its
        reference group, each placement is identical to the cached
        reference run — those placements are replayed via bulk-add
        instead of searched.
        """
        self.stats.orders_tried += 1
        trajectory = self._trajectory(index)
        ready_call: dict[str, int] = {}
        ready_ref: dict[str, int] = {}
        running_max = 0
        split = len(trajectory)
        for i, (name, _, finish, _, _) in enumerate(trajectory):
            group = by_name[name].group
            if group is not None:
                ref = self._ref_group[name]
                if ready_call.get(group, 0) != ready_ref.get(ref, 0):
                    split = i
                    break
                ready_call[group] = finish
                ready_ref[ref] = finish
            if finish > running_max:
                if incumbent is not None and finish >= incumbent:
                    self.stats.orders_pruned += 1
                    return None
                running_max = finish
        prefix = trajectory[:split]
        self.stats.prefix_placements += split
        items = [
            ScheduledTest(task=by_name[name], start=start, option=option)
            for name, start, _, _, option in prefix
        ]
        if split == len(trajectory):
            return running_max, items
        profile = self._profile()
        profile.batch_add(
            ((start, end, width, option.power)
             for _, start, end, width, option in prefix),
            check=False,
        )
        suffix = [by_name[name] for name in self._orders[index][split:]]
        self.stats.fresh_placements += len(suffix)
        makespan = _place_order(
            suffix, self._feasible, profile, items, ready_call,
            abort_at=incumbent, running_max=running_max,
        )
        if makespan is None:
            self.stats.orders_pruned += 1
            return None
        return makespan, items

    def pack(self, tasks: Iterable[TamTask]) -> Schedule:
        """The best schedule for *tasks* over the context's order set.

        *tasks* must have the context's exact geometry (same names and
        operating points); only serialization groups may differ.

        :returns: the feasible schedule with the smallest makespan
            found (deterministic for a fixed context configuration).
        """
        task_list = list(tasks)
        by_name = {t.name: t for t in task_list}
        if len(task_list) != len(self._names) \
                or by_name.keys() != self._name_set:
            raise ValueError(
                "task set does not match the PackContext geometry"
            )
        self.stats.packs += 1
        validate_all = os.environ.get(VALIDATE_ALL_ENV, "") == "1"
        same_grouping = all(
            by_name[name].group == group
            for name, group in self._ref_group.items()
        )
        use_prefix = not same_grouping and self._coarsens(by_name)
        bound = makespan_lower_bound(
            task_list, self.width, self.power_budget
        )

        best_makespan: int | None = None
        best_items: list[ScheduledTest] | None = None

        def consider(
            result: tuple[int, list[ScheduledTest]] | None
        ) -> None:
            nonlocal best_makespan, best_items
            if result is None:
                return
            makespan, items = result
            if validate_all:
                Schedule(
                    width=self.width, items=tuple(items),
                    power_budget=self.power_budget,
                ).validate()
            if best_makespan is None or makespan < best_makespan:
                best_makespan, best_items = makespan, items

        for index in range(len(self._orders)):
            if best_makespan is not None and best_makespan <= bound:
                self.stats.lb_stops += 1
                break
            if use_prefix:
                consider(
                    self._try_order_prefixed(index, by_name, best_makespan)
                )
            else:
                order = [by_name[name] for name in self._orders[index]]
                consider(self._try_order_fresh(order, best_makespan))

        assert best_makespan is not None and best_items is not None
        for _ in range(self.improvement_passes):
            # reschedule iteration: replay the best schedule's own start
            # order as a priority order, a list-scheduling convergence
            # trick; skipped once the incumbent is provably optimal
            if best_makespan <= bound:
                self.stats.lb_stops += 1
                break
            start_of = {item.task.name: item.start for item in best_items}
            order = sorted(
                task_list, key=lambda t: (start_of[t.name], t.name)
            )
            previous = best_makespan
            consider(self._try_order_fresh(order, best_makespan))
            if best_makespan >= previous:
                break

        schedule = Schedule(
            width=self.width, items=tuple(best_items),
            power_budget=self.power_budget,
        )
        schedule.validate()
        return schedule


def pack(
    tasks: Iterable[TamTask],
    width: int,
    rules: Sequence[str] = DEFAULT_RULES,
    shuffles: int = 8,
    improvement_passes: int = 3,
    power_budget: int | None = None,
) -> Schedule:
    """Pack *tasks*, trying several orders and keeping the best schedule.

    Three deterministic order sources are combined:

    1. the priority *rules* (largest area / time / width first, analog
       groups first);
    2. *shuffles* seeded random permutations biased toward large tasks
       (multi-start, seed fixed so results are repeatable);
    3. *improvement_passes* reschedule iterations — the best schedule's
       own start order is replayed as a priority order, a standard
       list-scheduling convergence trick.

    Repeated packs of the same rectangle geometry under different
    sharing partitions should build one :class:`PackContext` and call
    its :meth:`~PackContext.pack` instead — that is the evaluation hot
    path the schedule evaluator uses.

    :param tasks: the rectangles to schedule.
    :param width: SOC-level TAM width ``W``.
    :param rules: names from :data:`PRIORITY_RULES` to try.
    :param shuffles: number of seeded random restarts (0 disables).
    :param improvement_passes: maximum reschedule iterations (0 disables).
    :param power_budget: instantaneous power ceiling (``None`` =
        unconstrained).
    :returns: the feasible schedule with the smallest makespan found
        (deterministic for fixed arguments).
    :raises InfeasibleError: if some task cannot fit at all.
    :raises KeyError: if a rule name is unknown.
    """
    task_list = list(tasks)
    if not task_list:
        return Schedule(width=width, items=(), power_budget=power_budget)
    context = PackContext(
        task_list, width, rules=rules, shuffles=shuffles,
        improvement_passes=improvement_passes, power_budget=power_budget,
    )
    return context.pack(task_list)
