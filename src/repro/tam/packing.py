"""Greedy flexible-width rectangle packing for TAM scheduling.

The paper's test planner uses the rectangle-packing TAM optimization of
Iyengar, Chakrabarty and Marinissen (VTS'02).  This module implements a
deterministic greedy packer in that spirit:

1. order the tasks by a priority rule (largest minimum area first by
   default);
2. place each task at the earliest feasible start, choosing the Pareto
   operating point that minimizes its *finish* time — wide points start
   later but run shorter, narrow points squeeze into earlier gaps;
3. serialization groups (cores sharing an analog wrapper) constrain each
   member to start after the group's previously placed members finish.

Because greedy packing is order-sensitive, :func:`pack` tries several
priority rules and keeps the best makespan; every candidate schedule is
validated before comparison, so the returned schedule is always
feasible.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .model import TamTask
from .profile import CapacityProfile
from .schedule import Schedule, ScheduledTest

__all__ = ["pack", "pack_with_order", "InfeasibleError", "PRIORITY_RULES"]


class InfeasibleError(ValueError):
    """Raised when a task cannot fit on the TAM at any operating point."""


def _by_area(task: TamTask) -> tuple:
    return (-task.min_area, task.name)


def _by_time(task: TamTask) -> tuple:
    return (-task.min_time, task.name)


def _by_width(task: TamTask) -> tuple:
    return (-task.min_width, -task.min_area, task.name)


def _groups_first(task: TamTask) -> tuple:
    return (task.group is None, -task.min_area, task.name)


def _rigid_wide_first(task: TamTask) -> tuple:
    # wide rigid rectangles fragment the TAM badly when placed late;
    # front-load them, then flexible tasks by area
    return (
        not (task.is_rigid and task.min_width > 1),
        -task.min_width if task.is_rigid else 0,
        -task.min_area,
        task.name,
    )


#: Priority rules tried by :func:`pack`, by name.
PRIORITY_RULES = {
    "area": _by_area,
    "time": _by_time,
    "width": _by_width,
    "groups_first": _groups_first,
    "rigid_wide_first": _rigid_wide_first,
}


def pack_with_order(
    tasks: Sequence[TamTask], width: int, order: Sequence[TamTask]
) -> Schedule:
    """Pack *tasks* on a width-``width`` TAM in the given placement order.

    Each task is placed at the earliest feasible start over all its
    operating points that fit the TAM, choosing the point with the
    earliest finish (ties: narrower width, then earlier start).

    :raises InfeasibleError: if some task is wider than the TAM even at
        its narrowest operating point.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if {t.name for t in order} != {t.name for t in tasks} or len(order) != len(
        tasks
    ):
        raise ValueError("order must be a permutation of tasks")

    profile = CapacityProfile(width)
    group_ready: dict[str, int] = {}
    items: list[ScheduledTest] = []
    for task in order:
        feasible = task.options_within(width)
        if not feasible:
            raise InfeasibleError(
                f"task {task.name!r} needs {task.min_width} wires, TAM "
                f"has only {width}"
            )
        not_before = 0
        if task.group is not None:
            not_before = group_ready.get(task.group, 0)
        best: tuple[int, int, int] | None = None
        best_option = None
        for option in feasible:
            start = profile.earliest_fit(not_before, option.time, option.width)
            key = (start + option.time, option.width, start)
            if best is None or key < best:
                best = key
                best_option = option
        assert best is not None and best_option is not None
        finish, _, start = best
        profile.add(start, finish, best_option.width)
        if task.group is not None:
            group_ready[task.group] = finish
        items.append(ScheduledTest(task=task, start=start, option=best_option))

    schedule = Schedule(width=width, items=tuple(items))
    schedule.validate()
    return schedule


def pack(
    tasks: Iterable[TamTask],
    width: int,
    rules: Sequence[str] = (
        "area",
        "time",
        "width",
        "groups_first",
        "rigid_wide_first",
    ),
    shuffles: int = 8,
    improvement_passes: int = 3,
) -> Schedule:
    """Pack *tasks*, trying several orders and keeping the best schedule.

    Three deterministic order sources are combined:

    1. the priority *rules* (largest area / time / width first, analog
       groups first);
    2. *shuffles* seeded random permutations biased toward large tasks
       (multi-start, seed fixed so results are repeatable);
    3. *improvement_passes* reschedule iterations — the best schedule's
       own start order is replayed as a priority order, a standard
       list-scheduling convergence trick.

    :param tasks: the rectangles to schedule.
    :param width: SOC-level TAM width ``W``.
    :param rules: names from :data:`PRIORITY_RULES` to try.
    :param shuffles: number of seeded random restarts (0 disables).
    :param improvement_passes: maximum reschedule iterations (0 disables).
    :returns: the feasible schedule with the smallest makespan found
        (deterministic for fixed arguments).
    :raises InfeasibleError: if some task cannot fit at all.
    :raises KeyError: if a rule name is unknown.
    """
    import random

    task_list = list(tasks)
    if not task_list:
        return Schedule(width=width, items=())

    best: Schedule | None = None

    def consider(order: Sequence[TamTask]) -> None:
        nonlocal best
        candidate = pack_with_order(task_list, width, order)
        if best is None or candidate.makespan < best.makespan:
            best = candidate

    for rule in rules:
        consider(sorted(task_list, key=PRIORITY_RULES[rule]))

    rng = random.Random(0)
    base = sorted(task_list, key=_by_area)
    for _ in range(shuffles):
        # biased shuffle: perturb the area order with random keys so
        # large tasks still tend to go first
        keys = {t.name: i + rng.uniform(0, len(base) / 2) for i, t in enumerate(base)}
        consider(sorted(base, key=lambda t: keys[t.name]))

    assert best is not None
    for _ in range(improvement_passes):
        previous = best.makespan
        start_of = {item.task.name: item.start for item in best.items}
        consider(sorted(task_list, key=lambda t: (start_of[t.name], t.name)))
        if best.makespan >= previous:
            break
    return best
