"""Build TAM tasks from an SOC and a wrapper-sharing partition.

This is the glue between the SOC data model, the digital wrapper design,
and the scheduler:

* each digital core becomes one flexible task whose operating points are
  its Pareto staircase (``Design_wrapper`` at every useful width);
* each analog *test* becomes one rigid task (fixed TAM width and length,
  Table 2), labelled with its wrapper's serialization group.

Every analog core's tests share a group even when the core has a private
wrapper — one wrapper applies one test at a time.  A sharing partition
merges the groups of the cores mapped to the same wrapper (Section 3 of
the paper: "tests for cores sharing the same wrapper are scheduled
serially in time").
"""

from __future__ import annotations

from collections.abc import Sequence

from ..soc.model import AnalogCore, Soc
from ..wrapper.pareto import ParetoCache
from .model import TamTask, WidthOption

__all__ = ["analog_tasks", "digital_tasks", "soc_tasks", "group_of_core"]


def group_of_core(
    core_name: str, partition: Sequence[Sequence[str]] | None
) -> str:
    """Serialization-group label of *core_name* under *partition*.

    :param partition: groups of analog core names sharing a wrapper, or
        ``None`` for the no-sharing configuration (one wrapper per
        core).  Cores absent from the partition get private wrappers.
    """
    if partition is not None:
        for group in partition:
            if core_name in group:
                return "wrapper:" + "+".join(sorted(group))
    return f"wrapper:{core_name}"


def analog_tasks(
    cores: Sequence[AnalogCore],
    partition: Sequence[Sequence[str]] | None = None,
    include_self_test: bool = False,
) -> list[TamTask]:
    """Rigid tasks for every analog test, grouped by shared wrapper.

    :param cores: the analog cores to schedule.
    :param partition: wrapper-sharing groups of core names (see
        :func:`group_of_core`).
    :param include_self_test: add one converter-BIST task per wrapper
        (the paper's future-work extension; see
        :mod:`repro.analog_wrapper.self_test`).  Self-test streams only
        pass/fail signatures, so it occupies a single TAM wire, and it
        serializes with the wrapper's core tests.
    :raises ValueError: if the partition names a core that does not
        exist or names one core twice.
    """
    names = {core.name for core in cores}
    if partition is not None:
        seen: set[str] = set()
        for group in partition:
            for name in group:
                if name not in names:
                    raise ValueError(
                        f"partition names unknown analog core {name!r}"
                    )
                if name in seen:
                    raise ValueError(
                        f"analog core {name!r} appears in two wrapper groups"
                    )
                seen.add(name)
    tasks: list[TamTask] = []
    wrapper_members: dict[str, list[AnalogCore]] = {}
    for core in cores:
        group = group_of_core(core.name, partition)
        wrapper_members.setdefault(group, []).append(core)
        for test in core.tests:
            tasks.append(
                TamTask(
                    name=f"{core.name}.{test.name}",
                    options=(
                        WidthOption(
                            width=test.tam_width,
                            time=test.cycles,
                            power=test.power,
                        ),
                    ),
                    group=group,
                )
            )
    if include_self_test:
        from ..analog_wrapper.self_test import self_test_cycles

        for group, members in sorted(wrapper_members.items()):
            resolution = max(core.resolution_bits for core in members)
            tasks.append(
                TamTask(
                    name=f"selftest:{group.removeprefix('wrapper:')}",
                    options=(
                        WidthOption(
                            width=1, time=self_test_cycles(resolution)
                        ),
                    ),
                    group=group,
                )
            )
    return tasks


def digital_tasks(soc: Soc, cache: ParetoCache) -> list[TamTask]:
    """Flexible tasks for every digital core of *soc*.

    :param cache: Pareto staircases at the SOC TAM width; shared across
        scheduler invocations for speed.
    """
    tasks: list[TamTask] = []
    for core in soc.digital_cores:
        points = cache.points(core)
        # flat per-test power rating: every operating point of a core
        # draws the same power (scan activity, not TAM width, dominates)
        options = tuple(
            WidthOption(width=p.width, time=p.time, power=core.power)
            for p in points
        )
        tasks.append(TamTask(name=core.name, options=options, group=None))
    return tasks


def soc_tasks(
    soc: Soc,
    width: int,
    partition: Sequence[Sequence[str]] | None = None,
    cache: ParetoCache | None = None,
    include_self_test: bool = False,
) -> list[TamTask]:
    """All tasks of *soc* for a width-``width`` TAM under *partition*.

    :param soc: the mixed-signal SOC.
    :param width: SOC-level TAM width (bounds the digital staircases).
    :param partition: analog wrapper-sharing groups, or ``None`` for
        one private wrapper per analog core.
    :param cache: optional pre-built :class:`ParetoCache`; one is
        created on the fly when omitted.
    :param include_self_test: add converter-BIST tasks per wrapper (see
        :func:`analog_tasks`).
    """
    if cache is None:
        cache = ParetoCache(width)
    if cache.max_width < width:
        raise ValueError(
            f"ParetoCache was built for width {cache.max_width}, "
            f"need {width}"
        )
    return digital_tasks(soc, cache) + analog_tasks(
        soc.analog_cores, partition, include_self_test=include_self_test
    )
