"""Exact branch-and-bound TAM scheduling for small instances.

The greedy packer (:mod:`repro.tam.packing`) is a heuristic; this module
provides ground truth for small task sets so the test suite and the
ablation benches can measure the greedy's optimality gap.

The search enumerates *active schedules* with a serial
schedule-generation scheme: tasks are appended in every order, each at
its earliest feasible start, branching over the task's width options
(multi-mode).  For a regular objective such as makespan on a cumulative
resource, the set of active schedules contains an optimal schedule, so
exhausting orders x modes with admissible pruning is exact.

Complexity is factorial; :func:`optimal_schedule` refuses instances
larger than ``max_tasks`` to keep accidental misuse from hanging a test
run.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from .model import TamTask
from .packing import InfeasibleError
from .profile import CapacityProfile
from .schedule import Schedule, ScheduledTest

__all__ = ["optimal_schedule", "optimal_makespan"]


def optimal_schedule(
    tasks: Iterable[TamTask],
    width: int,
    max_tasks: int = 9,
    power_budget: int | None = None,
) -> Schedule:
    """Exact minimum-makespan schedule of *tasks* on a width-``W`` TAM.

    :param tasks: the rectangles (at most *max_tasks* of them).
    :param width: TAM width.
    :param max_tasks: safety limit on instance size.
    :param power_budget: instantaneous power ceiling (``None`` =
        unconstrained).
    :raises ValueError: if there are more than *max_tasks* tasks.
    :raises InfeasibleError: if some task is wider than the TAM (or
        has no operating point within the power budget).
    """
    task_list = sorted(tasks, key=lambda t: (-t.min_area, t.name))
    if len(task_list) > max_tasks:
        raise ValueError(
            f"branch and bound limited to {max_tasks} tasks, "
            f"got {len(task_list)}"
        )
    for task in task_list:
        if not task.options_within(width, power_budget):
            if not task.options_within(width):
                raise InfeasibleError(
                    f"task {task.name!r} needs {task.min_width} wires, "
                    f"TAM has only {width}"
                )
            raise InfeasibleError(
                f"task {task.name!r} draws more than the power budget "
                f"{power_budget} at every option fitting width {width}"
            )
    if not task_list:
        return Schedule(width=width, items=(), power_budget=power_budget)

    best: dict[str, object] = {"makespan": math.inf, "items": None}
    total_min_area = sum(t.min_area for t in task_list)
    total_min_energy = sum(t.min_energy for t in task_list)

    def bound(placed: list[ScheduledTest], remaining: list[TamTask]) -> float:
        current = max((i.finish for i in placed), default=0)
        placed_area = sum(i.width * i.option.time for i in placed)
        remaining_area = sum(t.min_area for t in remaining)
        volume = (placed_area + remaining_area) / width
        power_volume = 0.0
        if power_budget is not None:
            placed_energy = sum(i.option.energy for i in placed)
            remaining_energy = sum(t.min_energy for t in remaining)
            power_volume = (placed_energy + remaining_energy) / power_budget
        longest = max((t.min_time for t in remaining), default=0)
        group_ready: dict[str, int] = {}
        for item in placed:
            if item.task.group is not None:
                group_ready[item.task.group] = max(
                    group_ready.get(item.task.group, 0), item.finish
                )
        group_bound = 0
        usage: dict[str, int] = {}
        for t in remaining:
            if t.group is not None:
                usage[t.group] = usage.get(t.group, 0) + t.min_time
        for group, need in usage.items():
            group_bound = max(group_bound, group_ready.get(group, 0) + need)
        return max(current, volume, power_volume, longest, group_bound)

    # one shared profile for the whole search: each branch snapshots,
    # places, recurses, and rolls back, instead of rebuilding the
    # profile from `placed` at every node
    profile = CapacityProfile(width, power_budget)

    def dfs(placed: list[ScheduledTest], remaining: list[TamTask]) -> None:
        if not remaining:
            makespan = max((i.finish for i in placed), default=0)
            if makespan < best["makespan"]:
                best["makespan"] = makespan
                best["items"] = tuple(placed)
            return
        if bound(placed, remaining) >= best["makespan"]:
            return
        group_ready: dict[str, int] = {}
        for item in placed:
            if item.task.group is not None:
                group_ready[item.task.group] = max(
                    group_ready.get(item.task.group, 0), item.finish
                )
        for index, task in enumerate(remaining):
            not_before = (
                group_ready.get(task.group, 0) if task.group is not None else 0
            )
            rest = remaining[:index] + remaining[index + 1 :]
            for option in task.options_within(width, power_budget):
                start = profile.earliest_fit(
                    not_before, option.time, option.width, option.power
                )
                item = ScheduledTest(task=task, start=start, option=option)
                if max(
                    item.finish, max((i.finish for i in placed), default=0)
                ) >= best["makespan"]:
                    continue
                token = profile.snapshot()
                profile.add(item.start, item.finish, item.width, item.power)
                placed.append(item)
                dfs(placed, rest)
                placed.pop()
                profile.rollback(token)

    # seed the incumbent with a greedy schedule so pruning bites early
    from .packing import pack

    incumbent = pack(task_list, width, power_budget=power_budget)
    best["makespan"] = incumbent.makespan
    best["items"] = incumbent.items
    # quick exit: the greedy already meets the global lower bound
    greedy_lb = max(
        math.ceil(total_min_area / width),
        max(t.min_time for t in task_list),
    )
    if power_budget is not None:
        greedy_lb = max(
            greedy_lb, math.ceil(total_min_energy / power_budget)
        )
    if incumbent.makespan > greedy_lb:
        dfs([], task_list)

    schedule = Schedule(
        width=width,
        items=best["items"],  # type: ignore[arg-type]
        power_budget=power_budget,
    )
    schedule.validate()
    return schedule


def optimal_makespan(
    tasks: Iterable[TamTask],
    width: int,
    max_tasks: int = 9,
    power_budget: int | None = None,
) -> int:
    """Makespan of the exact optimum (see :func:`optimal_schedule`)."""
    return optimal_schedule(
        tasks, width, max_tasks=max_tasks, power_budget=power_budget
    ).makespan
