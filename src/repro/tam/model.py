"""Task model for flexible-width TAM scheduling.

The rectangle-packing view of SOC test scheduling (Iyengar, Chakrabarty,
Marinissen, VTS'02): every core test is a rectangle whose height is its
TAM width and whose length is its test time; the SOC-level TAM of width
``W`` is a bin of height ``W`` and unbounded length; the objective is to
minimize the makespan.

Digital cores are *flexible* rectangles — their wrapper can be designed
at any Pareto width, trading height for length along the staircase.
Analog tests are *rigid* rectangles — the TAM width requirement of an
analog test is fixed, and extra wires do not shorten it (Section 4 of
the paper).

Tests of analog cores that share one analog test wrapper must never
overlap in time (Section 3); this is expressed by giving their tasks a
common :attr:`TamTask.group` label, which the scheduler serializes.

Power is the second axis of this scheduling literature (Chou/Saluja,
Iyengar/Chakrabarty): every operating point carries a *power rating*
(peak test power in abstract units), and a schedule under a SOC-level
power budget must keep the sum of the ratings of concurrently running
tests at or below the budget at every instant.  Ratings default to 0,
so unconstrained models are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WidthOption", "TamTask"]


@dataclass(frozen=True)
class WidthOption:
    """One feasible (width, time) operating point of a task.

    :param width: TAM wires occupied.
    :param time: test time in TAM cycles.
    :param power: peak test power drawn while the rectangle runs
        (abstract units; 0 = unrated, never constrained).
    """

    width: int
    time: int
    power: int = 0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")
        if self.time < 1:
            raise ValueError(f"time must be >= 1, got {self.time}")
        if self.power < 0:
            raise ValueError(f"power must be >= 0, got {self.power}")

    @property
    def area(self) -> int:
        """Wire-cycles occupied by the rectangle at this point."""
        return self.width * self.time

    @property
    def energy(self) -> int:
        """Power-cycles drawn at this point (``time * power``)."""
        return self.time * self.power


@dataclass(frozen=True)
class TamTask:
    """A schedulable test: one digital core test or one analog test.

    :param name: unique task label, e.g. ``"d07"`` or ``"A.f_c"``.
    :param options: feasible operating points sorted by strictly
        increasing width and strictly decreasing time (a Pareto
        staircase).  Rigid analog tests have exactly one option.
    :param group: serialization-group label.  Tasks sharing a label are
        never scheduled concurrently (the shared analog wrapper can host
        one test at a time).  ``None`` means unconstrained.
    """

    name: str
    options: tuple[WidthOption, ...]
    group: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        if not self.options:
            raise ValueError(f"task {self.name!r} has no width options")
        widths = [o.width for o in self.options]
        times = [o.time for o in self.options]
        if widths != sorted(widths) or len(set(widths)) != len(widths):
            raise ValueError(
                f"task {self.name!r}: options must have strictly "
                f"increasing widths, got {widths}"
            )
        if times != sorted(times, reverse=True) or len(set(times)) != len(times):
            raise ValueError(
                f"task {self.name!r}: options must have strictly "
                f"decreasing times, got {times}"
            )

    @property
    def is_rigid(self) -> bool:
        """Whether the task has a single operating point."""
        return len(self.options) == 1

    @property
    def min_width(self) -> int:
        """Narrowest feasible width."""
        return self.options[0].width

    @property
    def min_time(self) -> int:
        """Shortest achievable time (at the widest option)."""
        return self.options[-1].time

    @property
    def min_area(self) -> int:
        """Smallest rectangle area over the staircase.

        Used by volume-based makespan lower bounds: no schedule can
        occupy fewer wire-cycles for this task than its cheapest point.
        """
        return min(o.area for o in self.options)

    @property
    def min_energy(self) -> int:
        """Smallest power-cycle draw over the staircase.

        Used by the power-volume makespan lower bound: no schedule can
        draw fewer power-cycles for this task than its cheapest point.
        """
        return min(o.energy for o in self.options)

    def options_within(
        self, width: int, power_budget: int | None = None
    ) -> tuple[WidthOption, ...]:
        """The operating points using at most *width* wires (and, when
        *power_budget* is given, drawing at most that much power)."""
        return tuple(
            o for o in self.options
            if o.width <= width
            and (power_budget is None or o.power <= power_budget)
        )

    def best_within(self, width: int) -> WidthOption:
        """Fastest operating point using at most *width* wires.

        :raises ValueError: if even the narrowest option exceeds *width*.
        """
        feasible = self.options_within(width)
        if not feasible:
            raise ValueError(
                f"task {self.name!r} needs at least {self.min_width} wires, "
                f"only {width} available"
            )
        return feasible[-1]
