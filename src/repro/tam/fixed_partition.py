"""Fixed-width TAM partition baseline (the architecture the paper beats).

Section 4 of the paper motivates the *flexible-width* rectangle-packing
TAM by pointing at the weakness of fixed-width partitions: analog cores
need only a few wires, so "when analog cores are tested serially with
digital cores on the same TAM partition, the analog cores do not use
all the TAM wires" and the overall time is not optimized.

This module implements that baseline so the claim is measurable: the
SOC TAM of width ``W`` is split into a small number of fixed buses;
every core is assigned to exactly one bus and the cores of one bus are
tested *serially*; an analog test occupies its own (small) width while
the rest of its bus idles.

The optimizer enumerates bus counts and width splits (coarse grid),
assigns serialization groups atomically (a shared wrapper's cores stay
on one bus), and load-balances with LPT.  The result is returned as an
ordinary validated :class:`~repro.tam.schedule.Schedule`, directly
comparable with the flexible packer's output.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from .model import TamTask
from .packing import InfeasibleError
from .schedule import Schedule, ScheduledTest

__all__ = ["FixedPartitionResult", "fixed_partition_pack", "width_splits"]


def width_splits(
    total: int, n_buses: int, step: int = 4
) -> list[tuple[int, ...]]:
    """Non-increasing splits of *total* into *n_buses* positive widths.

    Widths move on a grid of *step* wires (plus the remainder bucket),
    which keeps the enumeration small while covering the useful designs;
    ``step=1`` enumerates everything.
    """
    if total < n_buses:
        return []
    if n_buses == 1:
        return [(total,)]
    results: set[tuple[int, ...]] = set()

    def recurse(remaining: int, buses: int, maximum: int, prefix: tuple):
        if buses == 1:
            if 1 <= remaining <= maximum:
                results.add(prefix + (remaining,))
            return
        width = min(remaining - (buses - 1), maximum)
        while width >= 1:
            recurse(
                remaining - width, buses - 1, width, prefix + (width,)
            )
            width = width - step if width - step >= 1 else width - 1
    recurse(total, n_buses, total, ())
    return sorted(results, reverse=True)


@dataclass(frozen=True)
class FixedPartitionResult:
    """Best fixed-partition architecture found."""

    schedule: Schedule
    bus_widths: tuple[int, ...]
    assignment: dict[str, int]

    @property
    def makespan(self) -> int:
        """SOC test time of the fixed architecture."""
        return self.schedule.makespan


def _atomic_units(
    tasks: Sequence[TamTask],
) -> list[tuple[str, list[TamTask]]]:
    """Group tasks into bus-atomic units (shared wrappers are atomic)."""
    grouped: dict[str, list[TamTask]] = {}
    units: list[tuple[str, list[TamTask]]] = []
    for task in tasks:
        if task.group is None:
            units.append((task.name, [task]))
        else:
            if task.group not in grouped:
                grouped[task.group] = []
                units.append((task.group, grouped[task.group]))
            grouped[task.group].append(task)
    return units


def _schedule_on_buses(
    units: list[tuple[str, list[TamTask]]],
    bus_widths: tuple[int, ...],
) -> tuple[Schedule, dict[str, int]] | None:
    """LPT-assign atomic units to buses; None if some unit fits nowhere."""
    def unit_time(unit: list[TamTask], width: int) -> int | None:
        total = 0
        for task in unit:
            feasible = task.options_within(width)
            if not feasible:
                return None
            total += feasible[-1].time
        return total

    # LPT over units by their time on the widest bus
    widest = max(bus_widths)
    keyed = []
    for name, unit in units:
        t = unit_time(unit, widest)
        if t is None:
            return None
        keyed.append((t, name, unit))
    keyed.sort(key=lambda item: (-item[0], item[1]))

    loads = [0] * len(bus_widths)
    placements: list[tuple[list[TamTask], int]] = []
    assignment: dict[str, int] = {}
    for _, name, unit in keyed:
        best_bus = None
        best_finish = None
        for bus, width in enumerate(bus_widths):
            t = unit_time(unit, width)
            if t is None:
                continue
            finish = loads[bus] + t
            if best_finish is None or finish < best_finish:
                best_finish = finish
                best_bus = bus
        if best_bus is None:
            return None
        placements.append((unit, best_bus))
        assignment[name] = best_bus
        loads[best_bus] = best_finish

    # materialize: tasks of a bus run back-to-back in placement order
    cursor = [0] * len(bus_widths)
    items: list[ScheduledTest] = []
    for unit, bus in placements:
        width = bus_widths[bus]
        for task in unit:
            option = task.best_within(width)
            items.append(
                ScheduledTest(
                    task=task, start=cursor[bus], option=option
                )
            )
            cursor[bus] += option.time
    schedule = Schedule(width=sum(bus_widths), items=tuple(items))
    return schedule, assignment


def fixed_partition_pack(
    tasks: Iterable[TamTask],
    width: int,
    max_buses: int = 4,
    step: int = 4,
) -> FixedPartitionResult:
    """Best fixed-partition architecture over bus counts and splits.

    :param tasks: the rectangles to schedule.
    :param width: SOC-level TAM width ``W``.
    :param max_buses: largest number of fixed buses to consider.
    :param step: width grid of the split enumeration.
    :returns: the best architecture found (validated schedule).
    :raises InfeasibleError: if no architecture fits every task (e.g.
        a rigid task wider than ``W``).
    """
    task_list = list(tasks)
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if not task_list:
        return FixedPartitionResult(
            schedule=Schedule(width=width, items=()),
            bus_widths=(width,),
            assignment={},
        )
    units = _atomic_units(task_list)
    best: FixedPartitionResult | None = None
    for n_buses in range(1, max_buses + 1):
        for split in width_splits(width, n_buses, step=step):
            outcome = _schedule_on_buses(units, split)
            if outcome is None:
                continue
            schedule, assignment = outcome
            if best is None or schedule.makespan < best.makespan:
                best = FixedPartitionResult(
                    schedule=schedule,
                    bus_widths=split,
                    assignment=assignment,
                )
    if best is None:
        raise InfeasibleError(
            f"no fixed partition of width {width} fits every task"
        )
    best.schedule.validate()
    return best
