"""Physical TAM wire assignment for validated schedules.

Rectangle packing decides *when* each test runs and *how many* wires it
uses; SOC integration additionally needs *which* wires, so the wrapper
chains can be stitched to concrete TAM lines.  Because a validated
schedule never exceeds the TAM capacity, a greedy sweep over start
times can always hand each test a set of currently free wire indices
(the interval-graph colouring argument: at any instant at most ``W``
wires are busy).

The assignment makes no contiguity promise — a test may receive e.g.
wires ``{0, 3, 7}`` — matching flexible-width TAM proposals where the
fork-and-merge network is a permutation, not a slice.  A best-effort
preference keeps wires contiguous and stable when available.
"""

from __future__ import annotations

import heapq

from .schedule import Schedule

__all__ = ["assign_wires", "WireAssignmentError"]


class WireAssignmentError(RuntimeError):
    """Raised if a schedule cannot be wired (i.e. it was not valid)."""


def assign_wires(schedule: Schedule) -> dict[str, tuple[int, ...]]:
    """Assign concrete wire indices to every scheduled test.

    :param schedule: a feasible schedule (``validate()`` is invoked
        defensively).
    :returns: mapping from task name to the sorted tuple of wire
        indices it occupies for its whole duration.
    :raises WireAssignmentError: only if the schedule is infeasible
        (defensive; cannot happen for validated schedules).
    """
    schedule.validate()
    events: list[tuple[int, int, int]] = []  # (time, kind, item index)
    items = list(schedule.items)
    # kind 0 = release (process frees before takes at equal time)
    for index, item in enumerate(items):
        events.append((item.start, 1, index))
        events.append((item.finish, 0, index))
    events.sort()

    free: list[int] = list(range(schedule.width))
    heapq.heapify(free)
    held: dict[int, list[int]] = {}
    assignment: dict[str, tuple[int, ...]] = {}
    for _, kind, index in events:
        item = items[index]
        if kind == 0:
            for wire in held.pop(index, ()):
                heapq.heappush(free, wire)
            continue
        if len(free) < item.width:
            raise WireAssignmentError(
                f"task {item.task.name!r} needs {item.width} wires at "
                f"t={item.start}, only {len(free)} free"
            )
        wires = sorted(heapq.heappop(free) for _ in range(item.width))
        held[index] = wires
        assignment[item.task.name] = tuple(wires)
    return assignment


def render_wire_map(
    schedule: Schedule, assignment: dict[str, tuple[int, ...]] | None = None
) -> str:
    """Text listing of the wire assignment, sorted by start time."""
    if assignment is None:
        assignment = assign_wires(schedule)
    lines = [f"TAM wires 0..{schedule.width - 1}"]
    for item in sorted(schedule.items, key=lambda i: (i.start, i.task.name)):
        wires = assignment[item.task.name]
        compact = _compact_ranges(wires)
        lines.append(
            f"  {item.task.name:<18} t={item.start}..{item.finish} "
            f"wires {compact}"
        )
    return "\n".join(lines)


def _compact_ranges(wires: tuple[int, ...]) -> str:
    """Render sorted indices as ranges, e.g. (0,1,2,5) -> '0-2,5'."""
    if not wires:
        return "-"
    parts: list[str] = []
    start = previous = wires[0]
    for wire in wires[1:]:
        if wire == previous + 1:
            previous = wire
            continue
        parts.append(f"{start}-{previous}" if start != previous else str(start))
        start = previous = wire
    parts.append(f"{start}-{previous}" if start != previous else str(start))
    return ",".join(parts)
