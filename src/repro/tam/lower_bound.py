"""Makespan lower bounds for flexible-width TAM scheduling.

Three classic bounds, each valid independently; their maximum is the
bound the packer and the branch-and-bound baseline prune against:

* **volume** — total minimum rectangle area divided by the TAM width
  (no schedule can pack more than ``W`` wire-cycles per cycle);
* **critical task** — the longest minimum test time over all tasks
  (rectangles are not preemptible);
* **serialization** — for every shared-wrapper group, the sum of its
  members' minimum times (they can never overlap); this is the paper's
  analog-test-time lower bound :math:`T_{LB}` generalized to tasks.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from .model import TamTask

__all__ = [
    "volume_bound",
    "critical_task_bound",
    "serialization_bound",
    "makespan_lower_bound",
]


def volume_bound(tasks: Iterable[TamTask], width: int) -> int:
    """Ceiling of total minimum rectangle area over TAM width."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    total = sum(task.min_area for task in tasks)
    return math.ceil(total / width)


def critical_task_bound(tasks: Iterable[TamTask]) -> int:
    """Longest minimum test time over the tasks (0 if none)."""
    return max((task.min_time for task in tasks), default=0)


def serialization_bound(tasks: Iterable[TamTask]) -> int:
    """Largest per-group sum of minimum test times (0 without groups).

    This is the paper's Section 3 lower bound: the test-time usage of a
    shared analog wrapper is the sum of the test times of the cores that
    share it, and the analog part of the schedule can finish no earlier
    than the busiest wrapper.
    """
    usage: dict[str, int] = {}
    for task in tasks:
        if task.group is not None:
            usage[task.group] = usage.get(task.group, 0) + task.min_time
    return max(usage.values(), default=0)


def makespan_lower_bound(tasks: Iterable[TamTask], width: int) -> int:
    """The tightest of the three bounds."""
    task_list = list(tasks)
    return max(
        volume_bound(task_list, width),
        critical_task_bound(task_list),
        serialization_bound(task_list),
    )
