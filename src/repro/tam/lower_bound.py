"""Makespan lower bounds for flexible-width TAM scheduling.

Four classic bounds, each valid independently; their maximum is the
bound the packer and the branch-and-bound baseline prune against:

* **volume** — total minimum rectangle area divided by the TAM width
  (no schedule can pack more than ``W`` wire-cycles per cycle);
* **critical task** — the longest minimum test time over all tasks
  (rectangles are not preemptible);
* **serialization** — for every shared-wrapper group, the sum of its
  members' minimum times (they can never overlap); this is the paper's
  analog-test-time lower bound :math:`T_{LB}` generalized to tasks;
* **power volume** — total minimum energy (``time * power`` over each
  task's cheapest point) divided by the power budget: a schedule that
  may never draw more than ``P`` units at once needs at least
  ``ceil(sum(time_i * power_i) / P)`` cycles (the power-constrained
  scheduling literature's counterpart of the width-volume bound).
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from .model import TamTask

__all__ = [
    "volume_bound",
    "critical_task_bound",
    "serialization_bound",
    "power_volume_bound",
    "makespan_lower_bound",
]


def volume_bound(tasks: Iterable[TamTask], width: int) -> int:
    """Ceiling of total minimum rectangle area over TAM width."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    total = sum(task.min_area for task in tasks)
    return math.ceil(total / width)


def critical_task_bound(tasks: Iterable[TamTask]) -> int:
    """Longest minimum test time over the tasks (0 if none)."""
    return max((task.min_time for task in tasks), default=0)


def serialization_bound(tasks: Iterable[TamTask]) -> int:
    """Largest per-group sum of minimum test times (0 without groups).

    This is the paper's Section 3 lower bound: the test-time usage of a
    shared analog wrapper is the sum of the test times of the cores that
    share it, and the analog part of the schedule can finish no earlier
    than the busiest wrapper.
    """
    usage: dict[str, int] = {}
    for task in tasks:
        if task.group is not None:
            usage[task.group] = usage.get(task.group, 0) + task.min_time
    return max(usage.values(), default=0)


def power_volume_bound(tasks: Iterable[TamTask], power_budget: int) -> int:
    """Ceiling of total minimum task energy over the power budget.

    Admissible: any schedule's chosen options draw at least
    ``sum(min_energy)`` power-cycles in total, and an instantaneous
    budget of ``power_budget`` caps the draw per cycle.
    """
    if power_budget < 1:
        raise ValueError(
            f"power_budget must be >= 1, got {power_budget}"
        )
    total = sum(task.min_energy for task in tasks)
    return math.ceil(total / power_budget)


def makespan_lower_bound(
    tasks: Iterable[TamTask], width: int, power_budget: int | None = None
) -> int:
    """The tightest of the applicable bounds (power-volume only when a
    *power_budget* is given)."""
    task_list = list(tasks)
    bound = max(
        volume_bound(task_list, width),
        critical_task_bound(task_list),
        serialization_bound(task_list),
    )
    if power_budget is not None:
        bound = max(bound, power_volume_bound(task_list, power_budget))
    return bound
