"""Schedule representation and validation.

A :class:`Schedule` is the output of the TAM optimizer: one
:class:`ScheduledTest` per task with a start time, the chosen width, and
the implied finish.  :meth:`Schedule.validate` re-checks every constraint
from first principles (capacity, serialization groups, option
membership), so scheduler bugs cannot silently produce infeasible
results — every benchmark run validates its schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from .model import TamTask, WidthOption
from .profile import CapacityProfile

__all__ = ["ScheduledTest", "Schedule", "ScheduleError"]


class ScheduleError(ValueError):
    """Raised when a schedule violates a feasibility constraint."""


@dataclass(frozen=True)
class ScheduledTest:
    """One placed rectangle."""

    task: TamTask
    start: int
    option: WidthOption

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.option not in self.task.options:
            raise ValueError(
                f"option {self.option} is not an operating point of "
                f"task {self.task.name!r}"
            )

    @property
    def finish(self) -> int:
        """End time (exclusive) of the placed rectangle."""
        return self.start + self.option.time

    @property
    def width(self) -> int:
        """TAM wires occupied."""
        return self.option.width

    @property
    def power(self) -> int:
        """Peak power drawn while the rectangle runs."""
        return self.option.power


@dataclass(frozen=True)
class Schedule:
    """A complete test schedule for one SOC on a width-``W`` TAM.

    :param width: SOC-level TAM width.
    :param items: the placed rectangles.
    :param power_budget: instantaneous power ceiling the schedule was
        built under (``None`` = unconstrained); :meth:`validate`
        re-checks it alongside the width capacity.
    """

    width: int
    items: tuple[ScheduledTest, ...]
    power_budget: int | None = None

    @cached_property
    def makespan(self) -> int:
        """SOC test application time: latest finish over all tests.

        Cached — the refinement-monotonicity propagation compares
        makespans across the whole schedule cache, and the items tuple
        of a frozen schedule never changes.  (``cached_property``
        writes the instance ``__dict__`` directly, which a frozen
        dataclass without slots permits.)
        """
        if not self.items:
            return 0
        return max(item.finish for item in self.items)

    @property
    def total_area(self) -> int:
        """Wire-cycles actually occupied by rectangles."""
        return sum(item.width * item.option.time for item in self.items)

    @property
    def utilization(self) -> float:
        """Occupied share of the ``W x makespan`` bounding box (0..1)."""
        span = self.makespan
        if span == 0:
            return 0.0
        return self.total_area / (self.width * span)

    @cached_property
    def _items_by_name(self) -> dict[str, ScheduledTest]:
        # lazy name index: built on the first item() lookup, shared by
        # all subsequent ones (a frozen schedule never changes)
        return {it.task.name: it for it in self.items}

    def item(self, name: str) -> ScheduledTest:
        """Return the placed rectangle of task *name*.

        :raises KeyError: if no task of that name was scheduled.
        """
        try:
            return self._items_by_name[name]
        except KeyError:
            raise KeyError(f"no scheduled task named {name!r}") from None

    @property
    def peak_power(self) -> int:
        """Largest instantaneous power draw over the schedule.

        Computed by an event sweep over the placed rectangles'
        ratings; 0 for unrated task sets.
        """
        events: dict[int, int] = {}
        for item in self.items:
            if item.power:
                events[item.start] = events.get(item.start, 0) + item.power
                events[item.finish] = \
                    events.get(item.finish, 0) - item.power
        peak = draw = 0
        for _, delta in sorted(events.items()):
            draw += delta
            if draw > peak:
                peak = draw
        return peak

    def validate(self) -> None:
        """Re-check feasibility from first principles.

        Verifies that (i) task names are unique, (ii) total wire usage
        never exceeds the TAM width, (iii) instantaneous power draw
        never exceeds the power budget (when one is set), and (iv) no
        two tasks of one serialization group overlap in time.

        :raises ScheduleError: on the first violated constraint.
        """
        names = [item.task.name for item in self.items]
        if len(set(names)) != len(names):
            raise ScheduleError("duplicate task names in schedule")

        profile = CapacityProfile(self.width, self.power_budget)
        for item in sorted(self.items, key=lambda i: (i.start, i.task.name)):
            try:
                profile.add(item.start, item.finish, item.width, item.power)
            except ValueError as exc:
                raise ScheduleError(
                    f"task {item.task.name!r} overflows the TAM: {exc}"
                ) from exc

        by_group: dict[str, list[ScheduledTest]] = {}
        for item in self.items:
            if item.task.group is not None:
                by_group.setdefault(item.task.group, []).append(item)
        for group, members in by_group.items():
            members.sort(key=lambda i: i.start)
            for previous, current in zip(members, members[1:]):
                if current.start < previous.finish:
                    raise ScheduleError(
                        f"serialization violated in group {group!r}: "
                        f"{previous.task.name!r} [{previous.start}, "
                        f"{previous.finish}) overlaps "
                        f"{current.task.name!r} [{current.start}, "
                        f"{current.finish})"
                    )

    def group_spans(self) -> dict[str, tuple[int, int]]:
        """Per serialization group: (first start, last finish)."""
        spans: dict[str, tuple[int, int]] = {}
        for item in self.items:
            if item.task.group is None:
                continue
            start, finish = spans.get(item.task.group, (item.start, item.finish))
            spans[item.task.group] = (
                min(start, item.start),
                max(finish, item.finish),
            )
        return spans
