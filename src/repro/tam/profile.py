"""Capacity profile: TAM wire usage over time.

The scheduler tracks how many of the ``W`` TAM wires are busy at every
instant as a piecewise-constant step function.  :class:`CapacityProfile`
stores the breakpoints and answers the two queries packing needs:

* the minimum free capacity over an interval (can a rectangle of a given
  width lie here?), and
* the earliest time at or after a given instant where a rectangle of
  given width and duration fits.

Times are integers (TAM clock cycles).
"""

from __future__ import annotations

import bisect

__all__ = ["CapacityProfile"]


class CapacityProfile:
    """Piecewise-constant usage profile of a width-``capacity`` TAM."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        # Breakpoint representation: _times[i] is the start of a region
        # with usage _used[i]; the profile is 0 before the first
        # breakpoint and constant after the last.
        self._times: list[int] = [0]
        self._used: list[int] = [0]

    def usage_at(self, t: int) -> int:
        """Wire usage at time *t* (t >= 0)."""
        if t < 0:
            raise ValueError(f"time must be >= 0, got {t}")
        index = bisect.bisect_right(self._times, t) - 1
        return self._used[index]

    def free_at(self, t: int) -> int:
        """Free wires at time *t*."""
        return self.capacity - self.usage_at(t)

    def min_free(self, start: int, end: int) -> int:
        """Minimum free capacity over the half-open interval [start, end)."""
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        index = bisect.bisect_right(self._times, start) - 1
        worst = self._used[index]
        index += 1
        while index < len(self._times) and self._times[index] < end:
            worst = max(worst, self._used[index])
            index += 1
        return self.capacity - worst

    def fits(self, start: int, end: int, width: int) -> bool:
        """Whether a rectangle of *width* fits over [start, end)."""
        return self.min_free(start, end) >= width

    def add(self, start: int, end: int, width: int) -> None:
        """Occupy *width* wires over [start, end).

        :raises ValueError: if the rectangle does not fit.
        """
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if not self.fits(start, end, width):
            raise ValueError(
                f"rectangle [{start}, {end}) x {width} exceeds capacity "
                f"{self.capacity}"
            )
        self._insert_breakpoint(start)
        self._insert_breakpoint(end)
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        for i in range(lo, hi):
            self._used[i] += width

    def _insert_breakpoint(self, t: int) -> None:
        index = bisect.bisect_left(self._times, t)
        if index < len(self._times) and self._times[index] == t:
            return
        # usage just before t continues at t
        self._times.insert(index, t)
        self._used.insert(index, self._used[index - 1])

    def earliest_fit(self, not_before: int, duration: int, width: int) -> int:
        """Earliest start >= *not_before* where a rectangle fits.

        The profile is eventually constant (usage of the last region), so
        a fit always exists provided ``width <= capacity``; the search
        only needs to consider *not_before* and subsequent breakpoints.

        :raises ValueError: if ``width > capacity``.
        """
        if width > self.capacity:
            raise ValueError(
                f"width {width} exceeds TAM capacity {self.capacity}"
            )
        candidate = not_before
        while True:
            if self.fits(candidate, candidate + duration, width):
                return candidate
            # advance to the next breakpoint after the first blocking
            # region inside the candidate window
            index = bisect.bisect_right(self._times, candidate) - 1
            advanced = None
            while index < len(self._times):
                if self._used[index] + width > self.capacity:
                    # region starting at _times[index] blocks; resume at
                    # its end (the next breakpoint)
                    if index + 1 < len(self._times):
                        advanced = self._times[index + 1]
                    else:
                        # blocked forever — cannot happen: final region
                        # usage returns to 0 once all rectangles end
                        raise AssertionError(
                            "profile blocked in its final region"
                        )
                    break
                index += 1
            if advanced is None or advanced <= candidate:
                raise AssertionError("earliest_fit failed to advance")
            candidate = advanced

    def makespan(self) -> int:
        """Last instant with non-zero usage (0 for an empty profile)."""
        for i in range(len(self._times) - 1, -1, -1):
            if self._used[i] > 0:
                return self._times[i + 1] if i + 1 < len(self._times) else 0
        return 0

    def breakpoints(self) -> list[tuple[int, int]]:
        """A copy of the (time, usage) breakpoints, for inspection."""
        return list(zip(self._times, self._used))
