"""Skyline capacity profile: TAM wire usage over time.

The scheduler tracks how many of the ``W`` TAM wires are busy at every
instant as a piecewise-constant step function — a *skyline* stored as
two parallel breakpoint arrays.  :class:`CapacityProfile` answers the
queries packing needs:

* the minimum free capacity over an interval (can a rectangle of a given
  width lie here?);
* the earliest time at or after a given instant where a rectangle of
  given width and duration fits — :meth:`earliest_fit` walks the
  breakpoints **once** instead of re-scanning per candidate start;
* fast bulk mutation — :meth:`batch_add` is how
  :class:`~repro.tam.packing.PackContext` replays cached placement
  prefixes, and :meth:`clone` forks a profile for what-if placement;
* journaled :meth:`snapshot`/:meth:`rollback`, the undo mechanism the
  exact branch-and-bound search (:mod:`repro.tam.branch_bound`) uses
  to explore placements on one shared profile instead of rebuilding it
  at every node.

Times are integers (TAM clock cycles).
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable

__all__ = ["CapacityProfile"]


class CapacityProfile:
    """Piecewise-constant usage profile of a width-``capacity`` TAM.

    The invariant the fast paths rely on: the region after the last
    breakpoint always has usage 0 (every :meth:`add` re-inserts its end
    breakpoint, so usage returns to the pre-rectangle level there), so a
    rectangle no wider than the TAM always fits *somewhere*.
    """

    __slots__ = ("capacity", "_times", "_used", "_max_end", "_journal")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        # Breakpoint representation: _times[i] is the start of a region
        # with usage _used[i]; the profile is 0 before the first
        # breakpoint and constant after the last.
        self._times: list[int] = [0]
        self._used: list[int] = [0]
        self._max_end = 0
        # journal of undo records, enabled by the first snapshot()
        self._journal: list[tuple[int, int, int, bool, bool, int]] | None = \
            None

    def clone(self) -> "CapacityProfile":
        """An independent copy (journaling state is not inherited)."""
        other = CapacityProfile.__new__(CapacityProfile)
        other.capacity = self.capacity
        other._times = self._times.copy()
        other._used = self._used.copy()
        other._max_end = self._max_end
        other._journal = None
        return other

    def usage_at(self, t: int) -> int:
        """Wire usage at time *t* (t >= 0)."""
        if t < 0:
            raise ValueError(f"time must be >= 0, got {t}")
        index = bisect.bisect_right(self._times, t) - 1
        return self._used[index]

    def free_at(self, t: int) -> int:
        """Free wires at time *t*."""
        return self.capacity - self.usage_at(t)

    def min_free(self, start: int, end: int) -> int:
        """Minimum free capacity over the half-open interval [start, end)."""
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        times, used = self._times, self._used
        index = bisect.bisect_right(times, start) - 1
        worst = used[index]
        index += 1
        n = len(times)
        while index < n and times[index] < end:
            if used[index] > worst:
                worst = used[index]
            index += 1
        return self.capacity - worst

    def fits(self, start: int, end: int, width: int) -> bool:
        """Whether a rectangle of *width* fits over [start, end)."""
        return self.min_free(start, end) >= width

    def add(self, start: int, end: int, width: int) -> None:
        """Occupy *width* wires over [start, end).

        :raises ValueError: if the rectangle does not fit.
        """
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if not self.fits(start, end, width):
            raise ValueError(
                f"rectangle [{start}, {end}) x {width} exceeds capacity "
                f"{self.capacity}"
            )
        self._add_fast(start, end, width)

    def batch_add(
        self, rects: Iterable[tuple[int, int, int]], check: bool = True
    ) -> None:
        """Occupy several ``(start, end, width)`` rectangles in order.

        With ``check=False`` the capacity test is skipped — the bulk
        path for replaying a placement that is already known feasible
        (e.g. a cached packing prefix).
        """
        if check:
            for start, end, width in rects:
                self.add(start, end, width)
        else:
            for start, end, width in rects:
                self._add_fast(start, end, width)

    def _add_fast(self, start: int, end: int, width: int) -> None:
        """Occupy wires without the capacity pre-check (trusted path)."""
        times, used = self._times, self._used
        lo = bisect.bisect_left(times, start)
        new_start = lo == len(times) or times[lo] != start
        if new_start:
            times.insert(lo, start)
            used.insert(lo, used[lo - 1])
        hi = bisect.bisect_left(times, end)
        new_end = hi == len(times) or times[hi] != end
        if new_end:
            times.insert(hi, end)
            used.insert(hi, used[hi - 1])
        for i in range(lo, hi):
            used[i] += width
        if self._journal is not None:
            self._journal.append(
                (start, end, width, new_start, new_end, self._max_end)
            )
        if end > self._max_end:
            self._max_end = end

    def snapshot(self) -> int:
        """Start (or mark) a journaled editing span; returns a token.

        All subsequent adds are recorded so :meth:`rollback` can undo
        them in LIFO order.  Snapshots nest: each token marks a point
        the profile can be rolled back to.  O(1).
        """
        if self._journal is None:
            self._journal = []
        return len(self._journal)

    def rollback(self, token: int) -> None:
        """Undo every add recorded after :meth:`snapshot` issued *token*.

        Cost is O(ops · log n) bisects plus the breakpoint removals —
        independent of profile history before the snapshot.

        :raises ValueError: if *token* does not match an active journal.
        """
        if self._journal is None or token > len(self._journal):
            raise ValueError(f"no snapshot journal at token {token}")
        times, used = self._times, self._used
        while len(self._journal) > token:
            start, end, width, new_start, new_end, prev_max = \
                self._journal.pop()
            lo = bisect.bisect_left(times, start)
            hi = bisect.bisect_left(times, end)
            for i in range(lo, hi):
                used[i] -= width
            # hi > lo always, so deleting at hi never shifts lo
            if new_end:
                del times[hi], used[hi]
            if new_start:
                del times[lo], used[lo]
            self._max_end = prev_max

    def earliest_fit(self, not_before: int, duration: int, width: int) -> int:
        """Earliest start >= *not_before* where a rectangle fits.

        Single skyline walk: every breakpoint region is visited at most
        once, maintaining the current run of consecutive regions with
        enough free capacity.  The profile is eventually constant at
        usage 0, so a fit always exists provided ``width <= capacity``.

        :raises ValueError: if ``width > capacity``.
        """
        if width > self.capacity:
            raise ValueError(
                f"width {width} exceeds TAM capacity {self.capacity}"
            )
        times, used = self._times, self._used
        headroom = self.capacity - width
        n = len(times)
        i = bisect.bisect_right(times, not_before) - 1
        start = not_before
        while True:
            # skip blocked regions (the final region has usage 0, so
            # this never runs off the end)
            while used[i] > headroom:
                i += 1
                start = times[i]
            # extend the run of open regions beginning at `start`
            j = i
            while j + 1 < n and used[j + 1] <= headroom:
                j += 1
            if j + 1 == n or times[j + 1] - start >= duration:
                return start
            # run too short: resume past the blocking region
            i = j + 1
            start = times[i]

    def makespan(self) -> int:
        """Last instant with non-zero usage (0 for an empty profile)."""
        return self._max_end

    def breakpoints(self) -> list[tuple[int, int]]:
        """A copy of the (time, usage) breakpoints, for inspection."""
        return list(zip(self._times, self._used))
