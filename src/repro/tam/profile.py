"""Skyline capacity profile: TAM wire (and power) usage over time.

The scheduler tracks how many of the ``W`` TAM wires are busy at every
instant as a piecewise-constant step function — a *skyline* stored as
two parallel breakpoint arrays.  :class:`CapacityProfile` answers the
queries packing needs:

* the minimum free capacity over an interval (can a rectangle of a given
  width lie here?);
* the earliest time at or after a given instant where a rectangle of
  given width and duration fits — :meth:`earliest_fit` walks the
  breakpoints **once** instead of re-scanning per candidate start;
* fast bulk mutation — :meth:`batch_add` is how
  :class:`~repro.tam.packing.PackContext` replays cached placement
  prefixes, and :meth:`clone` forks a profile for what-if placement;
* journaled :meth:`snapshot`/:meth:`rollback`, the undo mechanism the
  exact branch-and-bound search (:mod:`repro.tam.branch_bound`) uses
  to explore placements on one shared profile instead of rebuilding it
  at every node.

With a *power_budget*, the profile grows a second skyline dimension: a
parallel per-region power-draw array, maintained by the same breakpoint
edits.  Every query then enforces both constraints — a rectangle fits
only where width **and** power headroom hold throughout its span.
Unconstrained profiles (``power_budget=None``, the default) never touch
the power array and behave exactly as before.

Times are integers (TAM clock cycles).
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable

__all__ = ["CapacityProfile", "FitStats"]


class FitStats:
    """Optional skyline-walk counters for telemetry.

    Attached by :meth:`CapacityProfile.attach_stats` only when
    telemetry is enabled (see :class:`repro.tam.packing.PackContext`);
    the disabled path pays a single ``is None`` branch per
    :meth:`~CapacityProfile.earliest_fit` call and nothing else.
    """

    __slots__ = ("fit_calls", "fit_regions")

    def __init__(self) -> None:
        #: earliest_fit invocations (both walks)
        self.fit_calls = 0
        #: skyline breakpoint regions visited across those walks — the
        #: actual work metric (calls x profile fragmentation)
        self.fit_regions = 0

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready)."""
        return {
            "fit_calls": self.fit_calls,
            "fit_regions": self.fit_regions,
        }


class CapacityProfile:
    """Piecewise-constant usage profile of a width-``capacity`` TAM.

    The invariant the fast paths rely on: the region after the last
    breakpoint always has usage 0 (every :meth:`add` re-inserts its end
    breakpoint, so usage returns to the pre-rectangle level there), so a
    rectangle no wider than the TAM always fits *somewhere*.  The same
    holds for the power dimension when a budget is set.

    :param capacity: TAM width ``W``.
    :param power_budget: peak-power ceiling every instant of the
        profile must respect, or ``None`` (the default) for the
        unconstrained profile (power arguments are then ignored).
    """

    __slots__ = ("capacity", "power_budget", "_times", "_used", "_power",
                 "_max_end", "_journal", "stats")

    def __init__(self, capacity: int, power_budget: int | None = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if power_budget is not None and power_budget < 1:
            raise ValueError(
                f"power_budget must be >= 1 when given, got {power_budget}"
            )
        self.capacity = capacity
        self.power_budget = power_budget
        # Breakpoint representation: _times[i] is the start of a region
        # with usage _used[i]; the profile is 0 before the first
        # breakpoint and constant after the last.  _power[i] is the
        # power draw of the same region (None when unconstrained).
        self._times: list[int] = [0]
        self._used: list[int] = [0]
        self._power: list[int] | None = \
            [0] if power_budget is not None else None
        self._max_end = 0
        # journal of undo records, enabled by the first snapshot()
        self._journal: list[
            tuple[int, int, int, int, bool, bool, int]
        ] | None = None
        #: optional FitStats sink; None (the default) is the no-op path
        self.stats: FitStats | None = None

    def clone(self) -> "CapacityProfile":
        """An independent copy (journaling state is not inherited)."""
        other = CapacityProfile.__new__(CapacityProfile)
        other.capacity = self.capacity
        other.power_budget = self.power_budget
        other._times = self._times.copy()
        other._used = self._used.copy()
        other._power = self._power.copy() if self._power is not None else None
        other._max_end = self._max_end
        other._journal = None
        # clones report into the same sink as the original
        other.stats = self.stats
        return other

    def attach_stats(self, stats: FitStats | None) -> None:
        """Attach a :class:`FitStats` sink (or detach with ``None``)."""
        self.stats = stats

    def usage_at(self, t: int) -> int:
        """Wire usage at time *t* (t >= 0)."""
        if t < 0:
            raise ValueError(f"time must be >= 0, got {t}")
        index = bisect.bisect_right(self._times, t) - 1
        return self._used[index]

    def free_at(self, t: int) -> int:
        """Free wires at time *t*."""
        return self.capacity - self.usage_at(t)

    def power_at(self, t: int) -> int:
        """Power draw at time *t* (0 for an unconstrained profile)."""
        if t < 0:
            raise ValueError(f"time must be >= 0, got {t}")
        if self._power is None:
            return 0
        index = bisect.bisect_right(self._times, t) - 1
        return self._power[index]

    def min_free(self, start: int, end: int) -> int:
        """Minimum free capacity over the half-open interval [start, end)."""
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        times, used = self._times, self._used
        index = bisect.bisect_right(times, start) - 1
        worst = used[index]
        index += 1
        n = len(times)
        while index < n and times[index] < end:
            if used[index] > worst:
                worst = used[index]
            index += 1
        return self.capacity - worst

    def min_power_headroom(self, start: int, end: int) -> int | None:
        """Minimum spare power over [start, end); ``None`` if unbudgeted."""
        if self._power is None:
            return None
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        times, power = self._times, self._power
        index = bisect.bisect_right(times, start) - 1
        worst = power[index]
        index += 1
        n = len(times)
        while index < n and times[index] < end:
            if power[index] > worst:
                worst = power[index]
            index += 1
        return self.power_budget - worst

    def fits(self, start: int, end: int, width: int, power: int = 0) -> bool:
        """Whether a width-*width*, power-*power* rectangle fits over
        [start, end)."""
        if self.min_free(start, end) < width:
            return False
        if self._power is not None and power:
            return self.min_power_headroom(start, end) >= power
        return True

    def add(self, start: int, end: int, width: int, power: int = 0) -> None:
        """Occupy *width* wires (drawing *power*) over [start, end).

        :raises ValueError: if the rectangle does not fit.
        """
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if power < 0:
            raise ValueError(f"power must be >= 0, got {power}")
        if self.min_free(start, end) < width:
            raise ValueError(
                f"rectangle [{start}, {end}) x {width} exceeds capacity "
                f"{self.capacity}"
            )
        if self._power is not None and power:
            if self.min_power_headroom(start, end) < power:
                raise ValueError(
                    f"rectangle [{start}, {end}) drawing {power} exceeds "
                    f"power budget {self.power_budget}"
                )
        self._add_fast(start, end, width, power)

    def batch_add(
        self,
        rects: Iterable[tuple],
        check: bool = True,
    ) -> None:
        """Occupy several ``(start, end, width[, power])`` rectangles
        in order.

        With ``check=False`` the capacity test is skipped — the bulk
        path for replaying a placement that is already known feasible
        (e.g. a cached packing prefix).
        """
        if check:
            for start, end, width, *rest in rects:
                self.add(start, end, width, rest[0] if rest else 0)
        else:
            for start, end, width, *rest in rects:
                self._add_fast(start, end, width, rest[0] if rest else 0)

    def _add_fast(
        self, start: int, end: int, width: int, power: int = 0
    ) -> None:
        """Occupy wires without the capacity pre-check (trusted path)."""
        times, used = self._times, self._used
        power_arr = self._power
        lo = bisect.bisect_left(times, start)
        new_start = lo == len(times) or times[lo] != start
        if new_start:
            times.insert(lo, start)
            used.insert(lo, used[lo - 1])
            if power_arr is not None:
                power_arr.insert(lo, power_arr[lo - 1])
        hi = bisect.bisect_left(times, end)
        new_end = hi == len(times) or times[hi] != end
        if new_end:
            times.insert(hi, end)
            used.insert(hi, used[hi - 1])
            if power_arr is not None:
                power_arr.insert(hi, power_arr[hi - 1])
        for i in range(lo, hi):
            used[i] += width
        if power_arr is not None and power:
            for i in range(lo, hi):
                power_arr[i] += power
        if self._journal is not None:
            self._journal.append(
                (start, end, width, power, new_start, new_end,
                 self._max_end)
            )
        if end > self._max_end:
            self._max_end = end

    def snapshot(self) -> int:
        """Start (or mark) a journaled editing span; returns a token.

        All subsequent adds are recorded so :meth:`rollback` can undo
        them in LIFO order.  Snapshots nest: each token marks a point
        the profile can be rolled back to.  O(1).
        """
        if self._journal is None:
            self._journal = []
        return len(self._journal)

    def rollback(self, token: int) -> None:
        """Undo every add recorded after :meth:`snapshot` issued *token*.

        Cost is O(ops · log n) bisects plus the breakpoint removals —
        independent of profile history before the snapshot.

        :raises ValueError: if *token* does not match an active journal.
        """
        if self._journal is None or token > len(self._journal):
            raise ValueError(f"no snapshot journal at token {token}")
        times, used = self._times, self._used
        power_arr = self._power
        while len(self._journal) > token:
            start, end, width, power, new_start, new_end, prev_max = \
                self._journal.pop()
            lo = bisect.bisect_left(times, start)
            hi = bisect.bisect_left(times, end)
            for i in range(lo, hi):
                used[i] -= width
            if power_arr is not None and power:
                for i in range(lo, hi):
                    power_arr[i] -= power
            # hi > lo always, so deleting at hi never shifts lo
            if new_end:
                del times[hi], used[hi]
                if power_arr is not None:
                    del power_arr[hi]
            if new_start:
                del times[lo], used[lo]
                if power_arr is not None:
                    del power_arr[lo]
            self._max_end = prev_max

    def earliest_fit(
        self, not_before: int, duration: int, width: int, power: int = 0
    ) -> int:
        """Earliest start >= *not_before* where a rectangle fits.

        Single skyline walk: every breakpoint region is visited at most
        once, maintaining the current run of consecutive regions with
        enough free capacity (and, on a power-budgeted profile, enough
        power headroom).  The profile is eventually constant at usage 0,
        so a fit always exists provided the rectangle respects both
        ceilings.

        :raises ValueError: if ``width > capacity``, or *power* exceeds
            the profile's power budget.
        """
        if width > self.capacity:
            raise ValueError(
                f"width {width} exceeds TAM capacity {self.capacity}"
            )
        times, used = self._times, self._used
        headroom = self.capacity - width
        stats = self.stats
        if stats is not None:
            stats.fit_calls += 1
        if self._power is not None and power:
            if power > self.power_budget:
                raise ValueError(
                    f"power {power} exceeds budget {self.power_budget}"
                )
            return self._earliest_fit_power(
                not_before, duration, headroom, power
            )
        n = len(times)
        i = bisect.bisect_right(times, not_before) - 1
        i0 = i
        start = not_before
        while True:
            # skip blocked regions (the final region has usage 0, so
            # this never runs off the end)
            while used[i] > headroom:
                i += 1
                start = times[i]
            # extend the run of open regions beginning at `start`
            j = i
            while j + 1 < n and used[j + 1] <= headroom:
                j += 1
            if j + 1 == n or times[j + 1] - start >= duration:
                if stats is not None:
                    stats.fit_regions += j - i0 + 1
                return start
            # run too short: resume past the blocking region
            i = j + 1
            start = times[i]

    def _earliest_fit_power(
        self, not_before: int, duration: int, headroom: int, power: int
    ) -> int:
        """The two-ceiling walk: a region is open only when both the
        width headroom and the power headroom admit the rectangle."""
        times, used = self._times, self._used
        power_arr = self._power
        p_headroom = self.power_budget - power
        stats = self.stats
        n = len(times)
        i = bisect.bisect_right(times, not_before) - 1
        i0 = i
        start = not_before
        while True:
            # the final region has usage 0 and draw 0, so neither loop
            # runs off the end
            while used[i] > headroom or power_arr[i] > p_headroom:
                i += 1
                start = times[i]
            j = i
            while j + 1 < n and used[j + 1] <= headroom \
                    and power_arr[j + 1] <= p_headroom:
                j += 1
            if j + 1 == n or times[j + 1] - start >= duration:
                if stats is not None:
                    stats.fit_regions += j - i0 + 1
                return start
            i = j + 1
            start = times[i]

    def makespan(self) -> int:
        """Last instant with non-zero usage (0 for an empty profile)."""
        return self._max_end

    def peak_power(self) -> int:
        """Largest instantaneous power draw (0 if untracked)."""
        if self._power is None:
            return 0
        return max(self._power)

    def breakpoints(self) -> list[tuple[int, int]]:
        """A copy of the (time, usage) breakpoints, for inspection."""
        return list(zip(self._times, self._used))

    def power_breakpoints(self) -> list[tuple[int, int]]:
        """A copy of the (time, power draw) breakpoints (empty when
        the profile has no power budget)."""
        if self._power is None:
            return []
        return list(zip(self._times, self._power))
