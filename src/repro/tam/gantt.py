"""ASCII Gantt rendering of TAM schedules.

Used by the examples and the benchmark harness to show *where* a
schedule spends its time — in particular how the serialized analog
wrapper groups thread through the digital rectangles.
"""

from __future__ import annotations

from .schedule import Schedule

__all__ = ["render_gantt"]


def render_gantt(schedule: Schedule, columns: int = 72) -> str:
    """Render *schedule* as one text row per scheduled test.

    Each row shows the task name, its rectangle as ``=`` characters on a
    time axis scaled to *columns* characters, and ``start..finish @width``
    on the right.  Rows are sorted by start time, then name.

    :param schedule: a (preferably validated) schedule.
    :param columns: width of the time axis in characters.
    """
    if columns < 10:
        raise ValueError(f"columns must be >= 10, got {columns}")
    span = schedule.makespan
    if span == 0:
        return "(empty schedule)"
    name_width = max(len(item.task.name) for item in schedule.items)
    scale = columns / span

    lines = [
        f"TAM width {schedule.width}, makespan {span} cycles, "
        f"utilization {schedule.utilization:.1%}"
    ]
    for item in sorted(schedule.items, key=lambda i: (i.start, i.task.name)):
        left = int(item.start * scale)
        right = max(left + 1, int(item.finish * scale))
        bar = " " * left + "=" * (right - left)
        bar = bar.ljust(columns)
        group = f" [{item.task.group}]" if item.task.group else ""
        lines.append(
            f"{item.task.name:<{name_width}} |{bar}| "
            f"{item.start}..{item.finish} @{item.width}{group}"
        )
    axis = f"{'':<{name_width}} |0".ljust(name_width + columns - len(str(span)))
    lines.append(axis + str(span) + "|")
    return "\n".join(lines)
