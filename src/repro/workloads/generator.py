"""Parameterized synthetic ITC'02-family digital SOC generation.

The ITC'02 SOC test benchmarks are a family of designs spanning two
orders of magnitude in size — from the 10-core ``d695`` to the 32-core
Philips giants ``p22810`` / ``p93791``.  The originals are not
redistributable, so this module *synthesizes* statistical stand-ins the
same way :mod:`repro.soc.benchmarks` synthesizes ``p93791``: every
family is a list of :class:`SizeClass` descriptors (how many cores, and
the ranges their scan-chain counts/lengths, pattern counts, and I/O
terminal counts are drawn from), expanded by a seeded
:class:`random.Random` so one ``(family, seed)`` pair always produces
the identical :class:`~repro.soc.model.Soc`.

Two entry points:

* :func:`generate_digital` — expand a :class:`DigitalFamily` into a SOC;
* :func:`random_family` — synthesize a *family itself* from a seed and a
  target core count, for open-ended scenario sweeps beyond the named
  ITC'02 stand-ins.

The ``P93791_FAMILY`` constant is the single source of truth for the
``p93791`` stand-in: :func:`repro.soc.benchmarks.synthetic_p93791`
delegates here, so the workload registry's ``p93791m`` preset is the
exact SOC every existing experiment already runs on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..soc.model import DigitalCore, Soc

__all__ = [
    "SizeClass",
    "DigitalFamily",
    "generate_digital",
    "random_family",
    "P93791_FAMILY",
    "P22810_FAMILY",
    "G1023_FAMILY",
    "D695_FAMILY",
]


def _check_range(name: str, bounds: tuple[int, int], minimum: int) -> None:
    low, high = bounds
    if low > high:
        raise ValueError(f"{name} range has low > high: {bounds}")
    if low < minimum:
        raise ValueError(f"{name} range must start at >= {minimum}: {bounds}")


@dataclass(frozen=True)
class SizeClass:
    """One size class of a synthetic digital SOC family.

    Each field except *count* is an inclusive ``(low, high)`` range the
    generator draws from uniformly.

    :param count: how many cores of this class the family contains.
    :param chain_count: number of internal scan chains per core
        (``(0, 0)`` for combinational cores).
    :param chain_length: length of each individual scan chain.
    :param patterns: test pattern count.
    :param inputs: functional input terminal count.
    :param outputs: functional output terminal count.
    :param bidirs: functional bidirectional terminal count.
    """

    count: int
    chain_count: tuple[int, int]
    chain_length: tuple[int, int]
    patterns: tuple[int, int]
    inputs: tuple[int, int]
    outputs: tuple[int, int]
    bidirs: tuple[int, int]

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        _check_range("chain_count", self.chain_count, 0)
        _check_range("chain_length", self.chain_length, 1)
        _check_range("patterns", self.patterns, 1)
        _check_range("inputs", self.inputs, 0)
        _check_range("outputs", self.outputs, 0)
        _check_range("bidirs", self.bidirs, 0)


@dataclass(frozen=True)
class DigitalFamily:
    """A named synthetic SOC family: an ordered list of size classes."""

    name: str
    classes: tuple[SizeClass, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("family name must be non-empty")
        if not self.classes:
            raise ValueError(f"family {self.name!r} has no size classes")

    @property
    def n_cores(self) -> int:
        """Total core count over all size classes."""
        return sum(c.count for c in self.classes)


#: The ``p93791`` stand-in, expressed as a family.
#: :func:`repro.soc.benchmarks.synthetic_p93791` is
#: ``generate_digital(P93791_FAMILY, seed=93791)``.
P93791_FAMILY = DigitalFamily(
    name="p93791",
    classes=(
        # giants: scan-dominated, drive the overall test-data volume
        SizeClass(4, (32, 46), (260, 620), (125, 230),
                  (60, 130), (30, 110), (0, 72)),
        # large scan cores
        SizeClass(8, (16, 30), (150, 400), (100, 260),
                  (40, 100), (30, 90), (0, 40)),
        # medium scan cores
        SizeClass(12, (4, 12), (80, 300), (115, 300),
                  (20, 70), (20, 60), (0, 20)),
        # small cores, little or no scan
        SizeClass(8, (0, 2), (40, 120), (150, 1000),
                  (10, 50), (10, 40), (0, 10)),
    ),
)

#: Stand-in for ITC'02 ``p22810`` (28 usable modules, another large
#: Philips design, slightly lighter on scan than p93791).
P22810_FAMILY = DigitalFamily(
    name="p22810",
    classes=(
        SizeClass(3, (24, 34), (200, 480), (110, 200),
                  (50, 110), (30, 90), (0, 50)),
        SizeClass(7, (10, 24), (120, 320), (90, 220),
                  (30, 90), (25, 70), (0, 30)),
        SizeClass(10, (3, 10), (60, 240), (100, 280),
                  (15, 60), (15, 50), (0, 16)),
        SizeClass(8, (0, 2), (30, 100), (120, 800),
                  (8, 40), (8, 35), (0, 8)),
    ),
)

#: Stand-in for ITC'02 ``g1023`` (14 modules, a mid-size design with
#: moderate scan and pattern counts).
G1023_FAMILY = DigitalFamily(
    name="g1023",
    classes=(
        SizeClass(3, (8, 18), (120, 350), (80, 180),
                  (30, 80), (25, 60), (0, 24)),
        SizeClass(7, (2, 8), (60, 200), (60, 160),
                  (15, 50), (12, 40), (0, 12)),
        SizeClass(4, (0, 1), (40, 100), (100, 500),
                  (8, 30), (8, 25), (0, 6)),
    ),
)

#: Stand-in for ITC'02 ``d695`` (10 modules, the small academic design
#: most TAM-optimization papers report first).
D695_FAMILY = DigitalFamily(
    name="d695",
    classes=(
        SizeClass(2, (8, 16), (100, 320), (60, 120),
                  (20, 60), (20, 50), (0, 16)),
        SizeClass(6, (2, 8), (50, 200), (40, 110),
                  (10, 40), (10, 35), (0, 8)),
        SizeClass(2, (0, 0), (1, 1), (100, 400),
                  (8, 30), (8, 25), (0, 4)),
    ),
)


def generate_digital(
    family: DigitalFamily, seed: int, name: str | None = None
) -> Soc:
    """Expand *family* into a digital SOC, deterministically from *seed*.

    The draw order per core is fixed (chain count, chain lengths,
    inputs, outputs, bidirs, patterns) and part of the reproducibility
    contract: identical family descriptors yield identical SOCs.

    :param family: the size-class descriptors.
    :param seed: RNG seed; same seed, same SOC.
    :param name: SOC name override (defaults to the family name).
    """
    rng = random.Random(seed)
    cores: list[DigitalCore] = []
    index = 0
    for size_class in family.classes:
        for _ in range(size_class.count):
            index += 1
            n_chains = rng.randint(*size_class.chain_count)
            chains = tuple(
                rng.randint(*size_class.chain_length) for _ in range(n_chains)
            )
            cores.append(
                DigitalCore(
                    name=f"d{index:02d}",
                    inputs=rng.randint(*size_class.inputs),
                    outputs=rng.randint(*size_class.outputs),
                    bidirs=rng.randint(*size_class.bidirs),
                    scan_chains=chains,
                    patterns=rng.randint(*size_class.patterns),
                )
            )
    return Soc(name=name or family.name, digital_cores=tuple(cores))


def random_family(
    n_cores: int, seed: int, scale: float = 1.0, name: str | None = None
) -> DigitalFamily:
    """Synthesize a plausible SOC family with *n_cores* cores from *seed*.

    Cores are split 1:2:2:3 across giant/large/medium/small classes
    (larger shares to the smaller classes, mirroring real SOC module
    populations); the per-class ranges are the ``p93791`` ranges shrunk
    or stretched by *scale*.

    :param n_cores: total digital core count (>= 4, one per class).
    :param seed: seed for jittering the class ranges.  Expanding the
        returned family still takes its own seed, so one family can be
        instantiated many times.
    :param scale: multiplies scan-chain counts/lengths and terminal
        counts; 1.0 keeps the p93791 size regime.
    :param name: family name (default ``rand{n_cores}``).
    """
    if n_cores < 4:
        raise ValueError(f"n_cores must be >= 4, got {n_cores}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    rng = random.Random(seed)

    def scaled(bounds: tuple[int, int], minimum: int) -> tuple[int, int]:
        jitter = rng.uniform(0.8, 1.2)
        low = max(minimum, round(bounds[0] * scale * jitter))
        high = max(low, round(bounds[1] * scale * jitter))
        return (low, high)

    shares = (1, 2, 2, 3)
    counts = [max(1, round(n_cores * s / sum(shares))) for s in shares]
    # adjust the last (most populous) class so the total is exact
    counts[-1] += n_cores - sum(counts)
    if counts[-1] < 1:
        counts = [1] * 3 + [n_cores - 3]
    classes = []
    for count, template in zip(counts, P93791_FAMILY.classes):
        classes.append(
            SizeClass(
                count=count,
                chain_count=scaled(template.chain_count, 0),
                chain_length=scaled(template.chain_length, 1),
                patterns=scaled(template.patterns, 1),
                inputs=scaled(template.inputs, 1),
                outputs=scaled(template.outputs, 1),
                bidirs=scaled(template.bidirs, 0),
            )
        )
    return DigitalFamily(
        name=name or f"rand{n_cores}", classes=tuple(classes)
    )
