"""Named workload registry: every scenario the tooling can run on.

A *workload* is a named, seeded recipe for a mixed-signal SOC.  The
registry maps names to :class:`Workload` entries so the CLI, the sweep
engine (:mod:`repro.runner`), and the experiment drivers all obtain
their SOC the same way::

    from repro.workloads import build

    soc = build("d695m")           # default seed, reproducible
    soc = build("p22810m", seed=7) # different digital instantiation

Shipped presets
===============

========== ============================================================
Name       Scenario
========== ============================================================
p93791m    the paper's benchmark: synthetic p93791 + Table 2 cores A..E
           (identical to :func:`repro.soc.benchmarks.p93791m`)
d695m      small 10-core ITC'02 stand-in + 2 ADCs and a DAC
g1023m     mid-size 14-core stand-in + CODEC core C, an ADC, and a PLL
p22810m    large 28-core stand-in + transmit pair A/B, 2 ADCs, DAC, PLL
mini       the 6-core unit-test SOC (fast; used by ``sweep --smoke``)
rand24m    seeded random 24-core family + a 5-core converter mix
rand48m    seeded random 48-core family + an 8-core converter-rich mix
big8m      search stress: small digital side + 8 analog cores
big12m     search stress: small digital side + 12 analog cores
big16m     search stress: small digital side + 16 analog cores
minip      ``mini`` with power ratings + a binding power budget
big8mp     ``big8m``, power-annotated (power-constrained stress)
big12mp    ``big12m``, power-annotated (power-constrained stress)
big16mp    ``big16m``, power-annotated (power-constrained stress)
========== ============================================================

The ``big*m`` presets exist to exercise :mod:`repro.search`: their
partition spaces (Bell(8) = 4140 up to Bell(16) ~ 1e10) are far beyond
the paper's exhaustive/heuristic drivers, while the deliberately small
digital side keeps each schedule evaluation fast.  The ``*p`` variants
run the same scenarios through :func:`repro.workloads.power.annotate_power`,
adding per-test power ratings and a binding SOC power budget — the
workload family for the power-constrained scheduling axis.

Custom workloads register with :func:`register`; :func:`random_workload`
builds ad-hoc scenarios (the ``repro generate`` command) without
registration.

Presets are backed by the canonical scenario schema
(:mod:`repro.schema`): :meth:`Workload.scenario` yields the
:class:`~repro.schema.ScenarioDoc` for a seed, and the ten non-power
presets additionally *ship* their default-seed document as packaged
data under ``repro/workloads/scenarios/`` — the registry serves the
shipped file when present (test-asserted equal to the code recipe), so
the preset a user ``repro scenario show``-s is byte-for-byte the one
the engine builds.  Factories may return either a ``ScenarioDoc`` or a
bare ``Soc`` (wrapped on the fly), so pre-schema custom registrations
keep working unchanged.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..schema import ScenarioDoc
from ..soc import benchmarks
from ..soc.model import Soc
from .analog import PAPER_POLICY, AnalogPolicy, augment
from .power import annotate_power
from .generator import (
    D695_FAMILY,
    G1023_FAMILY,
    P22810_FAMILY,
    DigitalFamily,
    generate_digital,
    random_family,
)

__all__ = [
    "Workload",
    "register",
    "get",
    "names",
    "build",
    "scenario",
    "random_workload",
    "random_scenario",
]


@dataclass(frozen=True)
class Workload:
    """A named SOC recipe.

    :param name: registry key, e.g. ``"d695m"``.
    :param description: one-line scenario summary for ``--list`` output.
    :param factory: callable mapping a seed to the scenario — either a
        :class:`~repro.schema.ScenarioDoc` or a bare
        :class:`~repro.soc.model.Soc` (wrapped into a document named
        after the workload).
    :param default_seed: seed used when the caller does not pass one.
    """

    name: str
    description: str
    factory: Callable[[int], "ScenarioDoc | Soc"]
    default_seed: int = 0

    def scenario(self, seed: int | None = None) -> ScenarioDoc:
        """The scenario document for *seed* (or the default seed).

        At the default seed, a shipped packaged document
        (``repro/workloads/scenarios/<name>.json``) takes precedence
        over running the factory; any other seed always runs the
        factory.  Factories returning a bare ``Soc`` are wrapped.
        """
        resolved = self.default_seed if seed is None else seed
        if resolved == self.default_seed:
            shipped = _shipped_scenario(self.name)
            if shipped is not None:
                return shipped
        made = self.factory(resolved)
        if isinstance(made, Soc):
            made = ScenarioDoc.from_soc(made, name=self.name)
        return made

    def build(self, seed: int | None = None) -> Soc:
        """Instantiate the SOC (with *seed*, or the default)."""
        return self.scenario(seed).build()


_SHIPPED: dict[str, ScenarioDoc | None] = {}


def _shipped_scenario(name: str) -> ScenarioDoc | None:
    """The packaged default-seed document for *name*, if shipped.

    Missing or unreadable files fall back silently to the code recipe
    (the scenario-lint CI job is what catches genuine drift or
    corruption); successful parses are memoized per process.
    """
    if name not in _SHIPPED:
        _SHIPPED[name] = _load_shipped(name)
    return _SHIPPED[name]


def _load_shipped(name: str) -> ScenarioDoc | None:
    try:
        from importlib.resources import files

        resource = files(__package__) / "scenarios" / f"{name}.json"
        text = resource.read_text(encoding="utf-8")
    except (FileNotFoundError, ModuleNotFoundError, OSError):
        return None
    from ..schema import ScenarioError, parse

    try:
        return parse(text, source=f"{name}.json")
    except ScenarioError:
        return None


_REGISTRY: dict[str, Workload] = {}


def register(workload: Workload, replace: bool = False) -> Workload:
    """Add *workload* to the registry.

    Sweep workers resolve workloads by *name* through this registry in
    their own process.  Under the ``fork`` start method (Linux default)
    they inherit runtime registrations; under ``spawn`` (macOS /
    Windows) they re-import from scratch, so register custom workloads
    at import time of a module the workers also import — registrations
    made under ``if __name__ == "__main__"`` are invisible to spawned
    workers.

    :raises ValueError: if the name is taken and *replace* is false.
    """
    if not replace and workload.name in _REGISTRY:
        raise ValueError(f"workload {workload.name!r} already registered")
    _REGISTRY[workload.name] = workload
    return workload


def get(name: str) -> Workload:
    """Look up a workload by name.

    :raises KeyError: naming the available presets if absent.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(names())}"
        ) from None


def names() -> tuple[str, ...]:
    """Registered workload names, sorted."""
    return tuple(sorted(_REGISTRY))


def build(name: str, seed: int | None = None) -> Soc:
    """Instantiate the workload called *name*."""
    return get(name).build(seed)


def scenario(name: str, seed: int | None = None) -> ScenarioDoc:
    """The scenario document of the workload called *name*."""
    return get(name).scenario(seed)


def random_workload(
    n_cores: int = 24,
    seed: int = 0,
    n_adc: int = 2,
    n_dac: int = 2,
    n_pll: int = 1,
    scale: float = 1.0,
) -> Soc:
    """An unregistered random mixed-signal scenario.

    Both the digital family and its instantiation derive from *seed*,
    so the whole SOC is a pure function of the arguments.
    """
    family = random_family(n_cores, seed=seed, scale=scale)
    digital = generate_digital(family, seed=seed)
    policy = AnalogPolicy(n_adc=n_adc, n_dac=n_dac, n_pll=n_pll)
    return augment(digital, policy, seed=seed)


def random_scenario(
    n_cores: int = 24,
    seed: int = 0,
    n_adc: int = 2,
    n_dac: int = 2,
    n_pll: int = 1,
    scale: float = 1.0,
    name: str | None = None,
) -> ScenarioDoc:
    """An unregistered random scenario as a canonical document."""
    soc = random_workload(
        n_cores, seed=seed, n_adc=n_adc, n_dac=n_dac, n_pll=n_pll,
        scale=scale,
    )
    return ScenarioDoc.from_soc(soc, name=name)


def _as_soc(made: "ScenarioDoc | Soc") -> Soc:
    return made.build() if isinstance(made, ScenarioDoc) else made


def _family_workload(
    name: str,
    description: str,
    family: DigitalFamily,
    policy: AnalogPolicy,
    default_seed: int,
) -> Workload:
    def factory(seed: int) -> ScenarioDoc:
        soc = augment(
            generate_digital(family, seed), policy, seed=seed, name=name
        )
        return ScenarioDoc.from_soc(soc, name=name)

    return Workload(
        name=name,
        description=description,
        factory=factory,
        default_seed=default_seed,
    )


def _power_variant(base_name: str, description: str) -> Workload:
    """The power-annotated twin of a registered preset (name + ``p``).

    The twin builds the base SOC from the same seed, then rates every
    test and derives a binding power budget via
    :func:`repro.workloads.power.annotate_power` (also seeded by the
    same value, so determinism is preserved end to end).
    """
    base = get(base_name)
    name = base_name + "p"

    def factory(seed: int) -> ScenarioDoc:
        soc = annotate_power(_as_soc(base.factory(seed)), seed=seed)
        return ScenarioDoc.from_soc(soc, name=name)

    return Workload(
        name=name,
        description=description,
        factory=factory,
        default_seed=base.default_seed,
    )


def _register_defaults() -> None:
    register(Workload(
        name="p93791m",
        description=(
            "paper benchmark: synthetic p93791 + Table 2 analog cores A..E"
        ),
        factory=benchmarks.p93791m,
        default_seed=benchmarks.DEFAULT_SEED,
    ))
    register(_family_workload(
        "d695m",
        "small 10-core ITC'02 stand-in + 2 ADCs and a DAC",
        D695_FAMILY,
        AnalogPolicy(n_adc=2, n_dac=1),
        default_seed=695,
    ))
    register(_family_workload(
        "g1023m",
        "mid-size 14-core stand-in + CODEC core C, an ADC, and a PLL",
        G1023_FAMILY,
        AnalogPolicy(paper_cores=("C",), n_adc=1, n_pll=1),
        default_seed=1023,
    ))
    register(_family_workload(
        "p22810m",
        "large 28-core stand-in + transmit pair A/B, 2 ADCs, DAC, PLL",
        P22810_FAMILY,
        AnalogPolicy(paper_cores=("A", "B"), n_adc=2, n_dac=1, n_pll=1),
        default_seed=22810,
    ))
    register(Workload(
        name="mini",
        description="6-core unit-test SOC (fast; used by sweep --smoke)",
        factory=lambda seed: benchmarks.mini_mixed_signal_soc(),
    ))
    register(Workload(
        name="rand24m",
        description="seeded random 24-core family + 5-core converter mix",
        factory=lambda seed: random_workload(24, seed=seed),
        default_seed=24,
    ))
    register(Workload(
        name="rand48m",
        description="seeded random 48-core family + converter-rich mix",
        factory=lambda seed: random_workload(
            48, seed=seed, n_adc=3, n_dac=3, n_pll=2
        ),
        default_seed=48,
    ))
    # search-stress presets: huge sharing spaces on a small digital
    # side, so anytime optimizers get many cheap evaluations
    register(_family_workload(
        "big8m",
        "search stress: small digital side + 8 analog cores (Bell 4140)",
        D695_FAMILY,
        AnalogPolicy(n_adc=3, n_dac=3, n_pll=2),
        default_seed=8,
    ))
    register(_family_workload(
        "big12m",
        "search stress: small digital side + 12 analog cores (Bell 4.2e6)",
        D695_FAMILY,
        AnalogPolicy(n_adc=5, n_dac=4, n_pll=3),
        default_seed=12,
    ))
    register(_family_workload(
        "big16m",
        "search stress: small digital side + 16 analog cores (Bell 1e10)",
        D695_FAMILY,
        AnalogPolicy(n_adc=6, n_dac=6, n_pll=4),
        default_seed=16,
    ))
    # power-annotated variants: the same scenarios with per-test power
    # ratings and a binding SOC power budget (derived from the same
    # seed, so a (preset, seed) pair still fully determines the SOC)
    for base, description in (
        ("mini", "'mini' with power ratings + a binding power budget"),
        ("big8m", "power-constrained big8m (ratings + derived budget)"),
        ("big12m", "power-constrained big12m (ratings + derived budget)"),
        ("big16m", "power-constrained big16m (ratings + derived budget)"),
    ):
        register(_power_variant(base, description))


_register_defaults()

#: Exported for callers that want the paper mix on their own digital SOC.
PAPER_ANALOG_POLICY = PAPER_POLICY
