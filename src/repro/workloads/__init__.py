"""Scenario generation: ITC'02-family SOC workloads beyond ``p93791m``.

The paper evaluates one SOC; the reproduction's scaling work needs many.
This package produces them three ways:

* :mod:`repro.workloads.generator` — seeded synthetic digital SOC
  families in the ITC'02 mold (``d695`` / ``g1023`` / ``p22810`` /
  ``p93791`` stand-ins, plus fully random families);
* :mod:`repro.workloads.analog` — augmentation policies grafting
  configurable ADC / DAC / PLL core mixes (and the paper's Table 2
  cores) onto any digital SOC;
* :mod:`repro.workloads.registry` — named presets so the CLI, the
  sweep engine, and the experiment drivers all resolve SOCs uniformly:
  ``build("d695m")``;
* :mod:`repro.workloads.power` — power annotation: rate every test
  and derive a binding SOC power budget (the ``minip`` / ``big8mp`` /
  ``big12mp`` / ``big16mp`` presets).

Everything is a pure function of ``(recipe, seed)``; the ``p93791m``
preset is bit-identical to :func:`repro.soc.benchmarks.p93791m`.
"""

from .analog import PAPER_POLICY, AnalogPolicy, augment, build_analog_cores
from .power import DEFAULT_UTILIZATION, annotate_power
from .generator import (
    D695_FAMILY,
    G1023_FAMILY,
    P22810_FAMILY,
    P93791_FAMILY,
    DigitalFamily,
    SizeClass,
    generate_digital,
    random_family,
)
from .registry import (
    Workload,
    build,
    get,
    names,
    random_scenario,
    random_workload,
    register,
    scenario,
)

__all__ = [
    "AnalogPolicy",
    "D695_FAMILY",
    "DigitalFamily",
    "G1023_FAMILY",
    "P22810_FAMILY",
    "P93791_FAMILY",
    "DEFAULT_UTILIZATION",
    "PAPER_POLICY",
    "SizeClass",
    "Workload",
    "annotate_power",
    "augment",
    "build",
    "build_analog_cores",
    "generate_digital",
    "get",
    "names",
    "random_family",
    "random_scenario",
    "random_workload",
    "register",
    "scenario",
]
