"""Analog-augmentation policies: graft analog core mixes onto SOCs.

The paper crafts its benchmark ``p93791m`` by adding five wrapped analog
cores (Table 2) to the digital ITC'02 SOC ``p93791``.  This module
generalizes that construction into a reusable *policy*: pick any subset
of the paper's cores verbatim (via :mod:`repro.soc.analog_specs`), add
any number of synthesized ADC / DAC / PLL cores, and graft the mix onto
any digital SOC.  Synthesized cores draw their band edges, sampling
rates, and test lengths from documented ranges with a seeded RNG, so a
``(policy, seed)`` pair always produces the same mixed-signal SOC.

The synthesized test sets follow standard mixed-signal production-test
practice:

* **ADC** — pass-band gain, SNR (multi-tone), THD, and a static
  INL/DNL ramp test (a DC test in the Table 2 sense);
* **DAC** — gain, THD, settling time (a timing test streamed at coarse
  resolution, like the paper's slew-rate test), and glitch energy;
* **PLL** — lock time, period jitter, and frequency accuracy; all
  timing-oriented, so they stream at very coarse amplitude resolution
  and can afford sampling far above the wrapper converters' precision
  regime (band-pass undersampling, as in Table 2's core D).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..soc import analog_specs
from ..soc.model import DC, AnalogCore, AnalogTest, Soc

__all__ = [
    "AnalogPolicy",
    "PAPER_POLICY",
    "augment",
    "synth_adc_core",
    "synth_dac_core",
    "synth_pll_core",
]

KHZ = 1e3
MHZ = 1e6

#: Factories for the paper's Table 2 cores, by name.
_PAPER_CORES = {
    "A": analog_specs.core_a,
    "B": analog_specs.core_b,
    "C": analog_specs.core_c,
    "D": analog_specs.core_d,
    "E": analog_specs.core_e,
}


@dataclass(frozen=True)
class AnalogPolicy:
    """A recipe for the analog side of a mixed-signal SOC.

    :param paper_cores: names among ``A``..``E`` to include verbatim
        from Table 2 (:mod:`repro.soc.analog_specs`).
    :param n_adc: number of synthesized ADC cores.
    :param n_dac: number of synthesized DAC cores.
    :param n_pll: number of synthesized PLL cores.
    :param speed: scales the synthesized cores' sampling frequencies
        and band edges (1.0 = baseband regime comparable to Table 2).
    """

    paper_cores: tuple[str, ...] = ()
    n_adc: int = 0
    n_dac: int = 0
    n_pll: int = 0
    speed: float = 1.0

    def __post_init__(self) -> None:
        unknown = set(self.paper_cores) - set(_PAPER_CORES)
        if unknown:
            raise ValueError(
                f"unknown paper cores {sorted(unknown)}, pick from "
                f"{sorted(_PAPER_CORES)}"
            )
        if len(set(self.paper_cores)) != len(self.paper_cores):
            raise ValueError(
                f"duplicate paper cores in {self.paper_cores}"
            )
        for field_name in ("n_adc", "n_dac", "n_pll"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")
        if self.speed <= 0:
            raise ValueError(f"speed must be positive, got {self.speed}")

    @property
    def n_cores(self) -> int:
        """Total number of analog cores the policy produces."""
        return len(self.paper_cores) + self.n_adc + self.n_dac + self.n_pll


#: The paper's own policy: cores A..E of Table 2, nothing synthesized.
PAPER_POLICY = AnalogPolicy(paper_cores=("A", "B", "C", "D", "E"))


def synth_adc_core(name: str, rng: random.Random,
                   speed: float = 1.0) -> AnalogCore:
    """Synthesize an embedded-ADC core with a 4-test production suite."""
    f0 = rng.uniform(20, 200) * KHZ * speed
    fs = rng.uniform(16, 64) * f0
    resolution = rng.randint(8, 12)
    tests = (
        AnalogTest("g_pb", f0, f0, fs,
                   rng.randint(20_000, 60_000), 1),
        AnalogTest("snr", 0.3 * f0, 3 * f0, fs,
                   rng.randint(40_000, 120_000), rng.randint(1, 2)),
        AnalogTest("thd", 0.5 * f0, 5 * f0, fs,
                   rng.randint(30_000, 90_000), 1),
        AnalogTest("inl_dnl", DC, DC, fs / 16,
                   rng.randint(4_000, 16_000), 1),
    )
    return AnalogCore(
        name=name,
        description="synthesized embedded ADC",
        tests=tests,
        resolution_bits=resolution,
    )


def synth_dac_core(name: str, rng: random.Random,
                   speed: float = 1.0) -> AnalogCore:
    """Synthesize an embedded-DAC core with a 4-test production suite."""
    f0 = rng.uniform(50, 500) * KHZ * speed
    fs = rng.uniform(8, 32) * f0
    resolution = rng.randint(8, 12)
    tests = (
        AnalogTest("gain", f0, f0, fs,
                   rng.randint(10_000, 40_000), 1),
        AnalogTest("thd", 0.5 * f0, 4 * f0, fs,
                   rng.randint(25_000, 80_000), rng.randint(1, 2)),
        # settling is a timing measurement: coarse amplitude bits make
        # its wide TAM requirement feasible (cf. Table 2 slew rate)
        AnalogTest("settling", 2 * f0, 8 * f0, 4 * fs,
                   rng.randint(2_000, 9_000), rng.randint(3, 5),
                   resolution_bits=3),
        AnalogTest("glitch_energy", DC, DC, fs / 8,
                   rng.randint(1_500, 6_000), 1),
    )
    return AnalogCore(
        name=name,
        description="synthesized embedded DAC",
        tests=tests,
        resolution_bits=resolution,
    )


def synth_pll_core(name: str, rng: random.Random,
                   speed: float = 1.0) -> AnalogCore:
    """Synthesize a PLL core: timing-oriented tests, coarse resolution."""
    f_ref = rng.uniform(5, 40) * MHZ * speed
    tests = (
        AnalogTest("lock_time", f_ref, f_ref, f_ref,
                   rng.randint(3_000, 12_000), rng.randint(2, 4),
                   resolution_bits=2),
        AnalogTest("jitter", f_ref, 2 * f_ref, 2 * f_ref,
                   rng.randint(8_000, 30_000), rng.randint(2, 5),
                   resolution_bits=3),
        AnalogTest("freq_accuracy", f_ref, f_ref, f_ref / 4,
                   rng.randint(1_000, 5_000), 1),
    )
    return AnalogCore(
        name=name,
        description="synthesized PLL",
        tests=tests,
        resolution_bits=rng.randint(4, 6),
    )


def build_analog_cores(
    policy: AnalogPolicy, seed: int
) -> tuple[AnalogCore, ...]:
    """The analog cores *policy* produces, deterministically from *seed*."""
    rng = random.Random(seed)
    cores = [_PAPER_CORES[n]() for n in policy.paper_cores]
    cores.extend(
        synth_adc_core(f"adc{i}", rng, policy.speed)
        for i in range(1, policy.n_adc + 1)
    )
    cores.extend(
        synth_dac_core(f"dac{i}", rng, policy.speed)
        for i in range(1, policy.n_dac + 1)
    )
    cores.extend(
        synth_pll_core(f"pll{i}", rng, policy.speed)
        for i in range(1, policy.n_pll + 1)
    )
    return tuple(cores)


def augment(
    soc: Soc,
    policy: AnalogPolicy,
    seed: int = 0,
    name: str | None = None,
) -> Soc:
    """Graft *policy*'s analog cores onto digital SOC *soc*.

    Follows the ITC'02-mixed naming convention: ``p93791`` grafted with
    analog cores becomes ``p93791m``.

    :param soc: the base SOC (its analog cores, if any, are replaced).
    :param policy: which analog cores to add.
    :param seed: RNG seed for the synthesized cores.
    :param name: name of the resulting SOC (default ``{soc.name}m``).
    :raises ValueError: if the policy produces no cores (the result
        would not be mixed-signal).
    """
    if policy.n_cores == 0:
        raise ValueError("analog policy produces no cores")
    return Soc(
        name=name or f"{soc.name}m",
        digital_cores=soc.digital_cores,
        analog_cores=build_analog_cores(policy, seed),
    )
