"""Power annotation: rate an SOC's tests and derive a power budget.

The power-constrained scheduling literature (Chou/Saluja; Iyengar and
Chakrabarty's power-constrained test scheduling) models each test as
drawing a flat peak power while it runs, with the SOC test plan capped
by an instantaneous budget.  :func:`annotate_power` retrofits that
model onto any registered workload:

* each **digital core** gets a flat rating scaling with the square
  root of its scan population (toggling flops dominate scan test
  power), jittered by a seeded RNG so cores of one size class do not
  all collide on one value;
* each **analog test** gets a small seeded rating (analog test power
  is dominated by the core's bias/driver circuits, not by size);
* the SOC's ``power_budget`` is set to a *utilization* fraction of the
  worst-case concurrent draw (the sum of all ratings), floored at the
  largest single rating so the instance always stays feasible.

Everything derives deterministically from ``(soc, seed)``, keeping the
workload-registry contract: one ``(preset, seed)`` pair, one SOC.
"""

from __future__ import annotations

import math
import random
from dataclasses import replace

from ..soc.model import AnalogCore, Soc

__all__ = ["annotate_power", "DEFAULT_UTILIZATION"]

#: Fraction of the worst-case concurrent draw (sum of all ratings) the
#: derived budget allows.  A TAM-width-limited schedule only ever runs
#: a minority of tests at once — its unconstrained peak draw sits near
#: a third of the sum on the stress presets — so 0.25 yields budgets
#: that genuinely bind (reshape schedules) while staying safely above
#: the largest single rating.
DEFAULT_UTILIZATION = 0.25


def annotate_power(
    soc: Soc,
    seed: int = 0,
    utilization: float = DEFAULT_UTILIZATION,
    power_budget: int | None = None,
) -> Soc:
    """Rate every test of *soc* and cap it with a power budget.

    :param soc: the SOC to annotate (existing ratings are replaced).
    :param seed: RNG seed for the rating jitter (deterministic).
    :param utilization: budget as a fraction of the sum of all
        ratings (ignored when *power_budget* is given).
    :param power_budget: explicit budget override; ``None`` derives
        one from *utilization*.
    :raises ValueError: if *utilization* is not in (0, 1].
    """
    if not 0 < utilization <= 1:
        raise ValueError(
            f"utilization must lie in (0, 1], got {utilization}"
        )
    rng = random.Random(seed)
    digital = tuple(
        replace(
            core,
            power=max(
                1,
                round(math.sqrt(core.scan_inputs) * rng.uniform(0.6, 1.4)),
            ),
        )
        for core in soc.digital_cores
    )
    analog: list[AnalogCore] = []
    for core in soc.analog_cores:
        tests = tuple(
            replace(test, power=rng.randint(1, 8)) for test in core.tests
        )
        analog.append(replace(core, tests=tests))
    total = sum(c.power for c in digital) + sum(
        t.power for c in analog for t in c.tests
    )
    largest = max(
        [c.power for c in digital]
        + [t.power for c in analog for t in c.tests],
        default=0,
    )
    if power_budget is None:
        power_budget = max(largest, math.ceil(total * utilization))
    return Soc(
        name=soc.name,
        digital_cores=digital,
        analog_cores=tuple(analog),
        power_budget=power_budget,
    )
