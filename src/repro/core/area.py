"""Area-overhead cost of a wrapper-sharing combination (Eq. 1).

The paper estimates the area overhead of a sharing combination as the
ratio of the wrapper area *with* sharing to the wrapper area of the
no-sharing configuration (which is the maximum), expressed on a 0..100
scale::

    C_A = 100 * sum_j (1 + R_j / 100) * a(G_j)  /  sum_i a_i

summed over all wrappers ``G_j`` (singletons have no routing overhead),
with the per-wrapper routing overhead

::

    R_j = 10 * (|G_j| - 1) * beta,      0 < beta <= 1

proportional to the number of sharing cores and a proximity factor
``beta`` (the paper uses the representative global value 0.5; with
floorplan positions we derive a per-group value from the cores'
cumulative distance).

Two readings of the shared-wrapper area ``a(G_j)`` are implemented:

* ``"joint"`` (default) — the wrapper is sized for the *joint*
  requirements (max resolution, max speed, max TAM width; Section 3's
  sizing rules) and priced by the calibrated area model.  A group
  combining one core's high resolution with another's high speed can
  then genuinely cost more than the no-sharing reference, which is why
  the paper says such combinations "should not be considered" — they
  show up here as ``C_A > 100``.
* ``"max"`` — the literal Eq. (1) text: the maximum of the individual
  wrapper areas, which can never exceed the no-sharing total.

DESIGN.md discusses why the paper's printed Table 1 values cannot be
reverse-engineered exactly (the per-core area constants are
unpublished); the benches report both readings.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..analog_wrapper.sizing import (
    DEFAULT_POLICY,
    CompatibilityPolicy,
    shared_hardware,
)
from ..soc.model import AnalogCore, distance
from .sharing import Partition

__all__ = ["AreaModel", "DEFAULT_BETA", "ROUTING_PER_EXTRA_CORE"]

#: The paper's representative routing proximity factor.
DEFAULT_BETA = 0.5

#: Routing overhead grows by 10 percentage points per extra sharing core
#: (at beta = 1).
ROUTING_PER_EXTRA_CORE = 10.0


@dataclass
class AreaModel:
    """Area cost :math:`C_A` for sharing combinations of *cores*.

    :param cores: the analog cores of the SOC.
    :param beta: global routing proximity factor in (0, 1]; ignored for
        groups whose cores all carry floorplan positions when
        *use_positions* is set.
    :param use_positions: derive per-group betas from floorplan
        distances where available.
    :param group_area_basis: ``"joint"`` or ``"max"`` (see module docs).
    :param policy: speed/resolution compatibility policy; incompatible
        groups raise from :meth:`group_area_mm2`.
    :param reference_distance: distance at which the positional beta
        saturates to 1.
    """

    cores: Sequence[AnalogCore]
    beta: float = DEFAULT_BETA
    use_positions: bool = False
    group_area_basis: str = "joint"
    policy: CompatibilityPolicy = field(default_factory=lambda: DEFAULT_POLICY)
    reference_distance: float = 10.0

    def __post_init__(self) -> None:
        if not self.cores:
            raise ValueError("at least one analog core is required")
        if not 0 < self.beta <= 1:
            raise ValueError(f"beta must be in (0, 1], got {self.beta}")
        if self.group_area_basis not in ("joint", "max"):
            raise ValueError(
                f"group_area_basis must be 'joint' or 'max', got "
                f"{self.group_area_basis!r}"
            )
        if self.reference_distance <= 0:
            raise ValueError(
                f"reference_distance must be positive, got "
                f"{self.reference_distance}"
            )
        self._by_name = {core.name: core for core in self.cores}
        if len(self._by_name) != len(self.cores):
            raise ValueError("core names must be unique")

    def core(self, name: str) -> AnalogCore:
        """Look up a core by name.

        :raises KeyError: if unknown.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown analog core {name!r}") from None

    def core_area_mm2(self, name: str) -> float:
        """Private-wrapper area of one core (mm^2)."""
        return self.policy.area_mm2([self.core(name)])

    @property
    def no_sharing_area_mm2(self) -> float:
        """Total wrapper area with one private wrapper per core."""
        return sum(self.core_area_mm2(core.name) for core in self.cores)

    def group_beta(self, group: Sequence[str]) -> float:
        """Routing proximity factor for one wrapper group."""
        if len(group) < 2:
            return self.beta
        members = [self.core(name) for name in group]
        if self.use_positions and all(c.position is not None for c in members):
            total = 0.0
            pairs = 0
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    total += distance(members[i], members[j])
                    pairs += 1
            mean = total / pairs
            return max(1e-3, min(1.0, mean / self.reference_distance))
        return self.beta

    def routing_overhead_percent(self, group: Sequence[str]) -> float:
        """Routing overhead R of a wrapper serving *group* (percent).

        ``R = 10 (k - 1) beta``: single-core wrappers have R = 0.
        """
        k = len(group)
        if k < 1:
            raise ValueError("group must be non-empty")
        return ROUTING_PER_EXTRA_CORE * (k - 1) * self.group_beta(group)

    def group_area_mm2(self, group: Sequence[str]) -> float:
        """Shared-wrapper silicon area for *group* (without routing)."""
        members = [self.core(name) for name in group]
        if self.group_area_basis == "joint":
            return self.policy.area_mm2(members)
        return max(self.core_area_mm2(name) for name in group)

    def group_cost_mm2(self, group: Sequence[str]) -> float:
        """Area including the routing overhead factor ``1 + R/100``."""
        r = self.routing_overhead_percent(group)
        return (1.0 + r / 100.0) * self.group_area_mm2(group)

    def area_cost(self, partition: Partition) -> float:
        """The Eq. (1) cost :math:`C_A` of *partition* on the 0..100 scale.

        100 corresponds to the no-sharing configuration; genuine sharing
        lands below 100 unless routing overhead or a pathological joint
        requirement (high speed + high resolution from different cores)
        pushes it above — those combinations are the ones the paper says
        to discard.
        """
        covered = sorted(name for group in partition for name in group)
        expected = sorted(self._by_name)
        if covered != expected:
            raise ValueError(
                f"partition {partition} does not cover cores {expected}"
            )
        total = sum(self.group_cost_mm2(group) for group in partition)
        return 100.0 * total / self.no_sharing_area_mm2

    def savings_cost(self, partition: Partition) -> float:
        """Alternative reading: normalized area *savings* (0..100).

        100 = the savings of the all-sharing combination, 0 = no
        savings.  Included because Table 1's printed values are more
        consistent with a savings-style normalization; see DESIGN.md.
        """
        from .sharing import all_sharing

        names = sorted(self._by_name)
        baseline = self.no_sharing_area_mm2
        best = baseline - sum(
            self.group_cost_mm2(group) for group in (tuple(names),)
        )
        if best <= 0:
            # all-sharing saves nothing (pathological joint requirement);
            # fall back to the best single partition = no meaningful scale
            return 0.0
        saved = baseline - sum(
            self.group_cost_mm2(group) for group in partition
        )
        return 100.0 * saved / best
