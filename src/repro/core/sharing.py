"""Enumeration of analog wrapper-sharing combinations.

A *sharing combination* is a partition of the analog cores into wrapper
groups: every group of size >= 2 shares one analog test wrapper, and
singleton groups keep private wrappers.

Three enumerations are provided:

* :func:`all_partitions` — every set partition, yielded **lazily** (the
  count grows with the Bell number — :func:`bell_number` — so large
  instances must never materialize the full list);
* :func:`paper_combinations` — the paper's "judiciously chosen" family
  (Table 1): partitions with exactly **one** shared group, plus
  partitions with exactly **two** shared groups and no private wrapper
  left over.  For the five benchmark cores this yields 26 combinations
  after symmetry reduction, matching the paper's ``N_tot = 26``;
* :func:`symmetry_reduce` — collapse partitions equivalent under
  swapping cores with identical test sets (cores A and B of the paper).

Partitions are represented canonically as ``tuple[tuple[str, ...], ...]``
with names sorted inside groups and groups sorted by (-size, names), so
they are hashable and printable.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Iterator, Sequence
from itertools import permutations

from ..soc.model import AnalogCore

__all__ = [
    "Partition",
    "canonical",
    "all_partitions",
    "random_partitions",
    "representative_partitions",
    "bell_number",
    "paper_combinations",
    "symmetry_reduce",
    "identical_core_classes",
    "shared_groups",
    "n_wrappers",
    "no_sharing",
    "all_sharing",
    "format_partition",
    "refines",
]

#: A wrapper-sharing partition of analog core names.
Partition = tuple[tuple[str, ...], ...]


def canonical(groups: Iterable[Iterable[str]]) -> Partition:
    """Canonical form: names sorted in groups, groups by (-size, names)."""
    normalized = tuple(
        tuple(sorted(group)) for group in groups if tuple(group)
    )
    seen: set[str] = set()
    for group in normalized:
        for name in group:
            if name in seen:
                raise ValueError(f"core {name!r} appears in two groups")
            seen.add(name)
    return tuple(sorted(normalized, key=lambda g: (-len(g), g)))


def no_sharing(names: Sequence[str]) -> Partition:
    """The partition with one private wrapper per core."""
    return canonical([[name] for name in names])


def all_sharing(names: Sequence[str]) -> Partition:
    """The partition with a single wrapper shared by every core."""
    return canonical([list(names)])


def shared_groups(partition: Partition) -> tuple[tuple[str, ...], ...]:
    """The groups of size >= 2 (the actually shared wrappers)."""
    return tuple(group for group in partition if len(group) >= 2)


def n_wrappers(partition: Partition) -> int:
    """Number of analog wrappers the partition uses (= its group count)."""
    return len(partition)


def format_partition(partition: Partition) -> str:
    """Human-readable form, e.g. ``{A,B,E}{C,D}`` (singletons omitted
    when any shared group exists, mirroring the paper's tables)."""
    shared = shared_groups(partition)
    groups = shared if shared else partition
    return "".join("{" + ",".join(group) + "}" for group in groups)


def refines(fine: Partition, coarse: Partition) -> bool:
    """Whether *fine* refines *coarse* (every fine group fits in a
    coarse group).

    If so, every schedule feasible under *coarse*'s serialization
    constraints is feasible under *fine*'s — the property the schedule
    evaluator uses to keep test times monotone under sharing.
    """
    owner: dict[str, tuple[str, ...]] = {}
    for group in coarse:
        for name in group:
            owner[name] = group
    for group in fine:
        try:
            targets = {owner[name] for name in group}
        except KeyError:
            return False
        if len(targets) != 1:
            return False
    return True


def bell_number(n: int) -> int:
    """Bell(n): the number of set partitions of *n* elements.

    The size of the space :func:`all_partitions` enumerates — use it to
    decide between exhaustive evaluation and budgeted search
    (:mod:`repro.search`) before asking for the partitions themselves.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    row = [1]
    for _ in range(n):
        new_row = [row[-1]]
        for value in row:
            new_row.append(new_row[-1] + value)
        row = new_row
    return row[0]


def all_partitions(names: Sequence[str]) -> Iterator[Partition]:
    """Every set partition of *names* (Bell(n) of them), canonical.

    Lazy: partitions are yielded one at a time in restricted-growth
    order, each exactly once, so callers may ``islice`` or sample the
    space without materializing Bell-number lists.  Duplicate names are
    rejected eagerly, before the first partition is produced.
    """
    items = list(names)
    if len(set(items)) != len(items):
        raise ValueError(f"names must be unique, got {items}")
    return _iter_partitions(items)


def _iter_partitions(items: list[str]) -> Iterator[Partition]:
    if not items:
        return

    groups: list[list[str]] = [[items[0]]]

    def recurse(index: int) -> Iterator[Partition]:
        if index == len(items):
            yield canonical(groups)
            return
        name = items[index]
        # place items[index] in each existing group, then in a new one;
        # canonical() snapshots, so mutating `groups` in place is safe
        for group in groups:
            group.append(name)
            yield from recurse(index + 1)
            group.pop()
        groups.append([name])
        yield from recurse(index + 1)
        groups.pop()

    yield from recurse(1)


def random_partitions(
    names: Sequence[str], n: int, seed: int = 0
) -> list[Partition]:
    """*n* distinct seeded random partitions of *names*, canonical.

    Sampled by the Chinese-restaurant construction (each element joins
    an existing group with probability proportional to its size, or
    opens a new one), which spreads draws across group-count strata —
    the shape the benchmark harness and the ``profile`` CLI need to
    exercise the scheduler on representative sharing combinations
    without enumerating a Bell-number space.  Deterministic for fixed
    arguments.

    :raises ValueError: if *names* is empty, has duplicates, or *n*
        exceeds the number of distinct partitions.
    """
    items = list(names)
    if not items or len(set(items)) != len(items):
        raise ValueError(f"names must be non-empty and unique, got {items}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    space = bell_number(len(items))
    if n > space:
        raise ValueError(
            f"cannot sample {n} distinct partitions of {len(items)} "
            f"names; only {space} exist"
        )
    rng = random.Random(seed)
    seen: set[Partition] = set()
    result: list[Partition] = []
    while len(result) < n:
        groups: list[list[str]] = []
        placed = 0
        for name in items:
            choice = rng.randrange(placed + 1) if placed else 0
            target = None
            for group in groups:
                if choice < len(group):
                    target = group
                    break
                choice -= len(group)
            if target is None:
                groups.append([name])
            else:
                target.append(name)
            placed += 1
        partition = canonical(groups)
        if partition not in seen:
            seen.add(partition)
            result.append(partition)
    return result


def representative_partitions(
    cores: Sequence[AnalogCore], limit: int, seed: int = 0
) -> list[Partition]:
    """Up to *limit* representative sharing partitions of *cores*.

    The shared sampling policy of the evaluation benchmark, the
    golden-parity tests, and the ``profile`` CLI: for five or fewer
    cores, the symmetry-reduced Table 1 family (plus no-sharing) —
    the combinations the paper itself evaluates; beyond that, seeded
    :func:`random_partitions`.  Deterministic for fixed arguments.
    """
    names = [core.name for core in cores]
    if len(names) <= 5:
        combos = symmetry_reduce(
            paper_combinations(names, include_no_sharing=True),
            identical_core_classes(cores),
        )
        return combos[:limit]
    return random_partitions(
        names, min(limit, bell_number(len(names))), seed=seed
    )


def paper_combinations(
    names: Sequence[str], include_no_sharing: bool = False
) -> list[Partition]:
    """The paper's Table 1 family of sharing combinations.

    Partitions with exactly one shared group (of any size >= 2), plus
    partitions with exactly two shared groups and no singleton
    remaining.  The no-sharing partition is excluded by default, as in
    Table 1 (it is the area-cost reference, not a candidate).

    Note: this family is *not* all partitions — e.g. two shared pairs
    plus a singleton ({A,C}{D,E}, B private) is skipped, exactly as the
    paper skips it.  Use :func:`all_partitions` for the full space.

    The Bell-number enumeration is consumed lazily; only the (much
    smaller) filtered family is materialized, sorted for a stable order.
    """
    result: list[Partition] = []
    for partition in all_partitions(names):
        shared = shared_groups(partition)
        if len(shared) == 1:
            result.append(partition)
        elif len(shared) == 2 and len(shared) == len(partition):
            result.append(partition)
        elif include_no_sharing and not shared:
            result.append(partition)
    return sorted(result)


def identical_core_classes(
    cores: Sequence[AnalogCore],
) -> list[tuple[str, ...]]:
    """Maximal classes of cores with identical test sets.

    For the paper's benchmark this returns ``[("A", "B")]`` (plus no
    other multi-element class): the I-Q transmit pair is
    interchangeable in any sharing combination.
    """
    classes: list[list[AnalogCore]] = []
    for core in cores:
        for cls in classes:
            if cls[0].has_identical_tests(core):
                cls.append(core)
                break
        else:
            classes.append([core])
    return [
        tuple(sorted(c.name for c in cls)) for cls in classes if len(cls) >= 2
    ]


def symmetry_reduce(
    partitions: Iterable[Partition],
    identical_classes: Sequence[Sequence[str]],
) -> list[Partition]:
    """Keep one representative per orbit under identical-core swaps.

    Two partitions are equivalent when some permutation of the names
    *within* each identical class maps one onto the other; the retained
    representative is the lexicographically smallest member of the
    orbit.  With no identical classes the input is returned de-duplicated.
    """
    def orbit_key(partition: Partition) -> Partition:
        best = partition
        # compose permutations over every identical class
        def apply(mapping: dict[str, str], p: Partition) -> Partition:
            return canonical(
                [[mapping.get(name, name) for name in group] for group in p]
            )

        mappings: list[dict[str, str]] = [{}]
        for cls in identical_classes:
            new_mappings: list[dict[str, str]] = []
            for perm in permutations(cls):
                base = dict(zip(cls, perm))
                for m in mappings:
                    combined = dict(m)
                    combined.update(base)
                    new_mappings.append(combined)
            mappings = new_mappings
        for mapping in mappings:
            candidate = apply(mapping, partition)
            if candidate < best:
                best = candidate
        return best

    seen: set[Partition] = set()
    result: list[Partition] = []
    for partition in partitions:
        key = orbit_key(partition)
        if key not in seen:
            seen.add(key)
            result.append(key)
    return sorted(result)
