"""The ``Cost_Optimizer`` heuristic (Figure 3 of the paper).

Exhaustively evaluating every sharing combination requires one TAM
optimization run per combination — exponential in the number of analog
cores.  ``Cost_Optimizer`` prunes with quantities available *before*
scheduling:

1. group the combinations by their **degree of sharing** (number of
   analog wrappers used);
2. for every combination compute the **preliminary cost** (Eq. 3) from
   the area cost and the analog test-time lower bound;
3. per group, select the combination with the smallest preliminary cost
   and fully evaluate it (one TAM run each — the paper's "lower bound
   on n is 4" for five cores: four degrees of sharing);
4. keep the group whose representative has the lowest full cost;
   eliminate every other group whose representative exceeds it by at
   least the threshold ``delta`` (``delta = 0`` eliminates all of
   them, the paper's Table 4 setting);
5. fully evaluate all members of the surviving groups and return the
   cheapest combination found.

The reported ``n_evaluated`` counts *actual* TAM optimization runs
(cache misses of the shared :class:`ScheduleEvaluator`), matching the
paper's Table 4 accounting; ``reduction_percent`` is
:math:`\\Delta E = (N_{tot} - n) / N_{tot} \\times 100`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from .cost import CostModel
from .sharing import Partition, n_wrappers

__all__ = ["GroupReport", "OptimizationResult", "cost_optimizer"]


@dataclass(frozen=True)
class GroupReport:
    """Fate of one degree-of-sharing group during the heuristic."""

    degree: int
    members: tuple[Partition, ...]
    representative: Partition
    representative_preliminary: float
    representative_cost: float
    eliminated: bool


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of a ``Cost_Optimizer`` (or exhaustive) run."""

    best_partition: Partition
    best_cost: float
    n_evaluated: int
    n_total: int
    groups: tuple[GroupReport, ...]

    @property
    def reduction_percent(self) -> float:
        """:math:`\\Delta E`: saved evaluations as a percentage."""
        if self.n_total == 0:
            return 0.0
        return 100.0 * (self.n_total - self.n_evaluated) / self.n_total


def cost_optimizer(
    model: CostModel,
    combinations: Sequence[Partition],
    delta: float = 0.0,
) -> OptimizationResult:
    """Run the Figure 3 heuristic over *combinations*.

    :param model: cost model (carries the shared schedule evaluator).
    :param combinations: candidate sharing combinations, e.g.
        :func:`repro.core.sharing.paper_combinations` after symmetry
        reduction.
    :param delta: group-elimination threshold; larger values keep more
        groups alive (more evaluations, closer to exhaustive).
    :returns: the :class:`OptimizationResult`.
    :raises ValueError: if *combinations* is empty or *delta* negative.
    """
    if not combinations:
        raise ValueError("at least one sharing combination is required")
    if delta < 0:
        raise ValueError(f"delta must be >= 0, got {delta}")

    start_evaluations = model.evaluator.evaluations

    # 1. group by degree of sharing
    by_degree: dict[int, list[Partition]] = {}
    for partition in combinations:
        by_degree.setdefault(n_wrappers(partition), []).append(partition)

    # 2-3. representative = min preliminary cost per group; evaluate it
    representatives: dict[int, Partition] = {}
    preliminary: dict[int, float] = {}
    rep_cost: dict[int, float] = {}
    for degree, members in sorted(by_degree.items()):
        rep = min(
            members, key=lambda p: (model.preliminary_cost(p), p)
        )
        representatives[degree] = rep
        preliminary[degree] = model.preliminary_cost(rep)
        rep_cost[degree] = model.total_cost(rep)

    # 4. elimination
    best_degree = min(
        rep_cost, key=lambda degree: (rep_cost[degree], degree)
    )
    c_min = rep_cost[best_degree]
    surviving = {
        degree
        for degree in rep_cost
        if degree == best_degree or rep_cost[degree] - c_min < delta
    }

    # 5. full evaluation of surviving groups
    best_partition = representatives[best_degree]
    best_cost = c_min
    for degree in sorted(surviving):
        for partition in by_degree[degree]:
            cost = model.total_cost(partition)
            if cost < best_cost or (
                cost == best_cost and partition < best_partition
            ):
                best_cost = cost
                best_partition = partition

    groups = tuple(
        GroupReport(
            degree=degree,
            members=tuple(by_degree[degree]),
            representative=representatives[degree],
            representative_preliminary=preliminary[degree],
            representative_cost=rep_cost[degree],
            eliminated=degree not in surviving,
        )
        for degree in sorted(by_degree)
    )
    return OptimizationResult(
        best_partition=best_partition,
        best_cost=best_cost,
        n_evaluated=model.evaluator.evaluations - start_evaluations,
        n_total=len(combinations),
        groups=groups,
    )
