"""Exhaustive cost evaluation — the baseline ``Cost_Optimizer`` beats.

Evaluates every sharing combination with a full TAM optimization run and
returns the optimum plus the complete cost table (the data behind the
paper's Tables 3 and 4 "exhaustive" columns).

Both entry points accept any iterable of partitions (e.g. the lazy
:func:`repro.core.sharing.all_partitions` generator) and an optional
early-stop *budget* in actual packing runs.  Without a budget the
candidates are materialized and evaluated coarsest-first (best for the
evaluator's refinement propagation); *with* a budget they are consumed
**lazily in the order given** and enumeration stops with the
evaluations, so an "exhaustive" run on a large instance degrades into a
truncated streaming baseline instead of materializing a Bell-number
list.
"""

from __future__ import annotations

from collections.abc import Iterable

from .cost import CostBreakdown, CostModel
from .optimizer import OptimizationResult
from .sharing import Partition

__all__ = ["exhaustive_search", "evaluate_all"]


def evaluate_all(
    model: CostModel,
    combinations: Iterable[Partition],
    budget: int | None = None,
) -> list[CostBreakdown]:
    """Cost breakdowns of every combination (one TAM run each).

    Without a *budget*, combinations are materialized and evaluated
    coarsest-first so the evaluator's refinement-monotonicity
    propagation is maximally effective.

    :param budget: stop once this many *actual* packing runs (evaluator
        cache misses) have been spent; at least one combination is
        always evaluated.  ``None`` evaluates everything.  With a
        budget the iterable is consumed lazily in its own order and
        never materialized — safe on Bell-number generators.
    """
    if budget is not None and budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    if budget is None:
        combinations = sorted(combinations, key=lambda p: (len(p), p))
    start_evaluations = model.evaluator.evaluations
    breakdowns: list[CostBreakdown] = []
    for partition in combinations:
        if (
            budget is not None
            and breakdowns
            and model.evaluator.evaluations - start_evaluations >= budget
        ):
            break
        breakdowns.append(model.breakdown(partition))
    return breakdowns


def exhaustive_search(
    model: CostModel,
    combinations: Iterable[Partition],
    budget: int | None = None,
) -> OptimizationResult:
    """Full evaluation of *combinations*; returns the global optimum.

    With a *budget*, the iterable is streamed (never materialized) and
    evaluation stops once that many actual packing runs have been
    spent; the best combination *seen so far* is returned.
    ``n_evaluated`` counts exactly the evaluator's cache misses
    (consistent with every other
    :class:`~repro.core.optimizer.OptimizationResult` producer), and
    ``n_total`` reports the candidates actually examined — the full
    count under no budget, the truncated one otherwise.

    :raises ValueError: if *combinations* is empty or *budget* < 1.
    """
    start_evaluations = model.evaluator.evaluations
    breakdowns = evaluate_all(model, combinations, budget=budget)
    if not breakdowns:
        raise ValueError("at least one sharing combination is required")
    best = min(breakdowns, key=lambda b: (b.total_cost, b.partition))
    return OptimizationResult(
        best_partition=best.partition,
        best_cost=best.total_cost,
        n_evaluated=model.evaluator.evaluations - start_evaluations,
        n_total=len(breakdowns),
        groups=(),
    )
