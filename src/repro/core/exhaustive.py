"""Exhaustive cost evaluation — the baseline ``Cost_Optimizer`` beats.

Evaluates every sharing combination with a full TAM optimization run and
returns the optimum plus the complete cost table (the data behind the
paper's Tables 3 and 4 "exhaustive" columns).
"""

from __future__ import annotations

from collections.abc import Sequence

from .cost import CostBreakdown, CostModel
from .optimizer import OptimizationResult
from .sharing import Partition

__all__ = ["exhaustive_search", "evaluate_all"]


def evaluate_all(
    model: CostModel, combinations: Sequence[Partition]
) -> list[CostBreakdown]:
    """Cost breakdowns of every combination (one TAM run each).

    Combinations are evaluated coarsest-first so the evaluator's
    refinement-monotonicity propagation is maximally effective.
    """
    ordered = sorted(combinations, key=lambda p: (len(p), p))
    return [model.breakdown(partition) for partition in ordered]


def exhaustive_search(
    model: CostModel, combinations: Sequence[Partition]
) -> OptimizationResult:
    """Full evaluation of *combinations*; returns the global optimum.

    :raises ValueError: if *combinations* is empty.
    """
    if not combinations:
        raise ValueError("at least one sharing combination is required")
    start_evaluations = model.evaluator.evaluations
    breakdowns = evaluate_all(model, combinations)
    best = min(breakdowns, key=lambda b: (b.total_cost, b.partition))
    return OptimizationResult(
        best_partition=best.partition,
        best_cost=best.total_cost,
        n_evaluated=model.evaluator.evaluations - start_evaluations,
        n_total=len(combinations),
        groups=(),
    )
