"""The paper's contribution: wrapper sharing + cost-oriented planning."""

from .area import DEFAULT_BETA, ROUTING_PER_EXTRA_CORE, AreaModel
from .cost import CostBreakdown, CostModel, CostWeights, ScheduleEvaluator
from .exhaustive import evaluate_all, exhaustive_search
from .frontier import FrontierPoint, cost_frontier, weight_for_segment
from .lower_bounds import (
    analog_time_lower_bound,
    normalized_lower_bound,
    true_lower_bound,
    truncate1,
    wrapper_usage,
)
from .optimizer import GroupReport, OptimizationResult, cost_optimizer
from .sharing import (
    Partition,
    all_partitions,
    all_sharing,
    bell_number,
    canonical,
    format_partition,
    identical_core_classes,
    n_wrappers,
    no_sharing,
    paper_combinations,
    refines,
    shared_groups,
    symmetry_reduce,
)

__all__ = [
    "AreaModel",
    "CostBreakdown",
    "CostModel",
    "CostWeights",
    "FrontierPoint",
    "cost_frontier",
    "weight_for_segment",
    "DEFAULT_BETA",
    "GroupReport",
    "OptimizationResult",
    "Partition",
    "ROUTING_PER_EXTRA_CORE",
    "ScheduleEvaluator",
    "all_partitions",
    "all_sharing",
    "analog_time_lower_bound",
    "bell_number",
    "canonical",
    "cost_optimizer",
    "evaluate_all",
    "exhaustive_search",
    "format_partition",
    "identical_core_classes",
    "n_wrappers",
    "no_sharing",
    "normalized_lower_bound",
    "paper_combinations",
    "refines",
    "shared_groups",
    "symmetry_reduce",
    "truncate1",
    "true_lower_bound",
    "wrapper_usage",
]
