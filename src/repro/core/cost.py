"""Test-cost model (Eqs. 2 and 3) and the cached schedule evaluator.

The total cost of testing the SOC with a given sharing combination is

.. math:: C = w_T \\, C_T + w_A \\, C_A, \\qquad w_T + w_A = 1

where :math:`C_T` is the SOC test time normalized to the all-sharing
combination (the most serialized, hence slowest, configuration — the
normalization makes it exactly 100) and :math:`C_A` is the Eq. (1) area
cost.  Before any schedule is computed, a *preliminary* cost estimate
(Eq. 3) substitutes the analytically available analog-time lower bound
for :math:`C_T`; the ``Cost_Optimizer`` heuristic uses it to pick group
representatives cheaply.

:class:`ScheduleEvaluator` wraps the rectangle-packing TAM optimizer
with two guarantees the optimization layer relies on:

* **caching** — each sharing combination is packed at most once per
  evaluator (the paper's evaluation counts ``n`` / ``N_tot`` are counts
  of these packs);
* **refinement monotonicity** — a schedule found under a coarser
  partition is feasible under any refinement (serialization constraints
  only relax), so makespans are propagated along the refinement order.
  In particular every combination refines the all-sharing one, which
  pins :math:`C_T \\le 100` with equality for all-sharing, exactly the
  paper's normalization.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..soc.model import Soc
from ..tam.builder import analog_tasks, digital_tasks
from ..tam.packing import pack
from ..tam.schedule import Schedule
from ..wrapper.pareto import ParetoCache
from .area import AreaModel
from .lower_bounds import normalized_lower_bound
from .sharing import Partition, refines

__all__ = ["CostWeights", "ScheduleEvaluator", "CostModel", "CostBreakdown"]


@dataclass(frozen=True)
class CostWeights:
    """Cost weighting factors (Eq. 2): ``time + area = 1``."""

    time: float
    area: float

    def __post_init__(self) -> None:
        if not 0 <= self.time <= 1 or not 0 <= self.area <= 1:
            raise ValueError(
                f"weights must lie in [0, 1], got ({self.time}, {self.area})"
            )
        if abs(self.time + self.area - 1.0) > 1e-9:
            raise ValueError(
                f"weights must sum to 1, got {self.time} + {self.area}"
            )

    @classmethod
    def time_heavy(cls) -> "CostWeights":
        """(2/3, 1/3): test time dominates the objective."""
        return cls(time=2 / 3, area=1 / 3)

    @classmethod
    def balanced(cls) -> "CostWeights":
        """(1/2, 1/2)."""
        return cls(time=0.5, area=0.5)

    @classmethod
    def area_heavy(cls) -> "CostWeights":
        """(1/3, 2/3): area overhead dominates the objective."""
        return cls(time=1 / 3, area=2 / 3)


class ScheduleEvaluator:
    """Cached, monotone TAM-schedule evaluation for sharing partitions.

    :param soc: the mixed-signal SOC.
    :param width: SOC-level TAM width ``W``.
    :param include_self_test: schedule converter-BIST tasks per wrapper
        (the paper's future-work extension; off by default, matching
        the paper's "self-test mode test time has not been considered").
    :param pareto: an optional pre-built (possibly pre-primed) digital
        Pareto staircase cache; :mod:`repro.runner` seeds one from its
        on-disk cache so workers skip wrapper design entirely.  Must
        have ``max_width >= width``.
    :param pack_kwargs: forwarded to :func:`repro.tam.packing.pack`
        (e.g. ``shuffles=0`` for faster, rougher evaluations in tests).
    """

    def __init__(
        self,
        soc: Soc,
        width: int,
        include_self_test: bool = False,
        pareto: ParetoCache | None = None,
        **pack_kwargs,
    ):
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if pareto is not None and pareto.max_width < width:
            raise ValueError(
                f"pareto cache max_width {pareto.max_width} < TAM width "
                f"{width}"
            )
        self.soc = soc
        self.width = width
        self.include_self_test = include_self_test
        self._pack_kwargs = pack_kwargs
        self._pareto = pareto or ParetoCache(width)
        self._digital = digital_tasks(soc, self._pareto)
        self._schedules: dict[Partition, Schedule] = {}
        #: number of actual packing runs performed (the paper's ``n``)
        self.evaluations = 0
        #: metering hook: called with the updated evaluation count
        #: after every actual packing run (cache hits never fire it).
        #: Budget meters and progress displays for the anytime
        #: optimizers (:mod:`repro.search`) attach here; an exception
        #: raised by the hook propagates to the caller, which is how a
        #: hard budget can abort an in-flight optimization.
        self.on_evaluation: Callable[[int], None] | None = None

    def schedule(self, partition: Partition) -> Schedule:
        """The (cached) schedule for *partition*.

        The returned schedule may have been inherited from a coarser
        partition when that one packed better; it is feasible for
        *partition* either way (its constraints are a superset).
        """
        cached = self._schedules.get(partition)
        if cached is not None:
            return cached
        tasks = self._digital + analog_tasks(
            self.soc.analog_cores,
            partition,
            include_self_test=self.include_self_test,
        )
        result = pack(tasks, self.width, **self._pack_kwargs)
        self.evaluations += 1
        if self.on_evaluation is not None:
            self.on_evaluation(self.evaluations)
        # refinement monotonicity: inherit better coarse schedules, and
        # retro-propagate this result to cached refinements.  NOT valid
        # with self-test tasks: a refinement has *more* wrappers, hence
        # more BIST work, so coarse schedules do not cover its task set.
        if self.include_self_test:
            self._schedules[partition] = result
            return result
        for other, other_schedule in list(self._schedules.items()):
            if (
                refines(partition, other)
                and other_schedule.makespan < result.makespan
            ):
                result = other_schedule
            elif (
                refines(other, partition)
                and result.makespan < other_schedule.makespan
            ):
                self._schedules[other] = result
        self._schedules[partition] = result
        return result

    def makespan(self, partition: Partition) -> int:
        """SOC test time under *partition*, in TAM cycles."""
        return self.schedule(partition).makespan

    @property
    def evaluated_partitions(self) -> tuple[Partition, ...]:
        """Partitions with a cached result, in insertion order."""
        return tuple(self._schedules)


@dataclass(frozen=True)
class CostBreakdown:
    """Cost components of one sharing combination at one TAM width."""

    partition: Partition
    makespan: int
    time_cost: float
    area_cost: float
    total_cost: float


class CostModel:
    """Eq. (2)/(3) cost evaluation on top of a :class:`ScheduleEvaluator`.

    :param soc: the mixed-signal SOC.
    :param width: TAM width ``W``.
    :param weights: cost weighting factors.
    :param area_model: Eq. (1) area model over the SOC's analog cores.
    :param evaluator: optional shared evaluator (lets several weight
        settings reuse one schedule cache, as Table 4 effectively does).
    """

    def __init__(
        self,
        soc: Soc,
        width: int,
        weights: CostWeights,
        area_model: AreaModel,
        evaluator: ScheduleEvaluator | None = None,
        **pack_kwargs,
    ):
        self.soc = soc
        self.width = width
        self.weights = weights
        self.area_model = area_model
        self.evaluator = evaluator or ScheduleEvaluator(
            soc, width, **pack_kwargs
        )
        self._all_share: Partition = tuple(
            [tuple(sorted(core.name for core in soc.analog_cores))]
        )

    @property
    def all_share_makespan(self) -> int:
        """Test time of the all-sharing combination (the normalizer)."""
        return self.evaluator.makespan(self._all_share)

    def time_cost(self, partition: Partition) -> float:
        """:math:`C_T`: makespan normalized to all-sharing, 0..100."""
        return (
            100.0
            * self.evaluator.makespan(partition)
            / self.all_share_makespan
        )

    def area_cost(self, partition: Partition) -> float:
        """:math:`C_A` capped at 100 (costs are defined on 1..100)."""
        return min(100.0, self.area_model.area_cost(partition))

    def total_cost(self, partition: Partition) -> float:
        """Eq. (2): the weighted total cost."""
        return (
            self.weights.time * self.time_cost(partition)
            + self.weights.area * self.area_cost(partition)
        )

    def preliminary_cost(self, partition: Partition) -> float:
        """Eq. (3): lower-bound-based estimate, no scheduling needed."""
        t_hat = normalized_lower_bound(
            self.soc.analog_cores, partition, truncate=False
        )
        return (
            self.weights.time * t_hat
            + self.weights.area * self.area_cost(partition)
        )

    def breakdown(self, partition: Partition) -> CostBreakdown:
        """All cost components of *partition* (forces an evaluation)."""
        return CostBreakdown(
            partition=partition,
            makespan=self.evaluator.makespan(partition),
            time_cost=self.time_cost(partition),
            area_cost=self.area_cost(partition),
            total_cost=self.total_cost(partition),
        )
