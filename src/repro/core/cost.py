"""Test-cost model (Eqs. 2 and 3) and the cached schedule evaluator.

The total cost of testing the SOC with a given sharing combination is

.. math:: C = w_T \\, C_T + w_A \\, C_A, \\qquad w_T + w_A = 1

where :math:`C_T` is the SOC test time normalized to the all-sharing
combination (the most serialized, hence slowest, configuration — the
normalization makes it exactly 100) and :math:`C_A` is the Eq. (1) area
cost.  Before any schedule is computed, a *preliminary* cost estimate
(Eq. 3) substitutes the analytically available analog-time lower bound
for :math:`C_T`; the ``Cost_Optimizer`` heuristic uses it to pick group
representatives cheaply.

:class:`ScheduleEvaluator` wraps the rectangle-packing TAM optimizer
with two guarantees the optimization layer relies on:

* **caching** — each sharing combination is packed at most once per
  evaluator (the paper's evaluation counts ``n`` / ``N_tot`` are counts
  of these packs);
* **refinement monotonicity** — a schedule found under a coarser
  partition is feasible under any refinement (serialization constraints
  only relax), so makespans are propagated along the refinement order.
  In particular every combination refines the all-sharing one, which
  pins :math:`C_T \\le 100` with equality for all-sharing, exactly the
  paper's normalization.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from .. import obs
from ..soc.model import Soc
from ..tam.builder import analog_tasks, digital_tasks
from ..tam.lower_bound import (
    critical_task_bound,
    power_volume_bound,
    volume_bound,
)
from ..tam.packing import PackContext, PackStats, pack
from ..tam.schedule import Schedule
from ..wrapper.pareto import ParetoCache
from .area import AreaModel
from .lower_bounds import normalized_lower_bound, true_lower_bound
from .sharing import Partition, refines

__all__ = ["CostWeights", "ScheduleEvaluator", "CostModel", "CostBreakdown"]


@dataclass(frozen=True)
class CostWeights:
    """Cost weighting factors (Eq. 2): ``time + area = 1``."""

    time: float
    area: float

    def __post_init__(self) -> None:
        if not 0 <= self.time <= 1 or not 0 <= self.area <= 1:
            raise ValueError(
                f"weights must lie in [0, 1], got ({self.time}, {self.area})"
            )
        if abs(self.time + self.area - 1.0) > 1e-9:
            raise ValueError(
                f"weights must sum to 1, got {self.time} + {self.area}"
            )

    @classmethod
    def time_heavy(cls) -> "CostWeights":
        """(2/3, 1/3): test time dominates the objective."""
        return cls(time=2 / 3, area=1 / 3)

    @classmethod
    def balanced(cls) -> "CostWeights":
        """(1/2, 1/2)."""
        return cls(time=0.5, area=0.5)

    @classmethod
    def area_heavy(cls) -> "CostWeights":
        """(1/3, 2/3): area overhead dominates the objective."""
        return cls(time=1 / 3, area=2 / 3)


class ScheduleEvaluator:
    """Cached, monotone TAM-schedule evaluation for sharing partitions.

    :param soc: the mixed-signal SOC.
    :param width: SOC-level TAM width ``W``.
    :param include_self_test: schedule converter-BIST tasks per wrapper
        (the paper's future-work extension; off by default, matching
        the paper's "self-test mode test time has not been considered").
    :param pareto: an optional pre-built (possibly pre-primed) digital
        Pareto staircase cache; :mod:`repro.runner` seeds one from its
        on-disk cache so workers skip wrapper design entirely.  Must
        have ``max_width >= width``.
    :param engine: ``"fast"`` (the :class:`~repro.tam.packing.PackContext`
        hot path) or ``"reference"`` (the retained seed packer of
        :mod:`repro.tam.reference` — benchmarks and parity tests only).
    :param pack_kwargs: forwarded to :func:`repro.tam.packing.pack`
        (e.g. ``shuffles=0`` for faster, rougher evaluations in tests).
    """

    def __init__(
        self,
        soc: Soc,
        width: int,
        include_self_test: bool = False,
        pareto: ParetoCache | None = None,
        engine: str = "fast",
        **pack_kwargs,
    ):
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if pareto is not None and pareto.max_width < width:
            raise ValueError(
                f"pareto cache max_width {pareto.max_width} < TAM width "
                f"{width}"
            )
        if engine not in ("fast", "reference"):
            raise ValueError(
                f"engine must be 'fast' or 'reference', got {engine!r}"
            )
        self.soc = soc
        self.width = width
        self.include_self_test = include_self_test
        self.engine = engine
        #: SOC-level instantaneous power ceiling (from the SOC; None =
        #: unconstrained).  Threaded into every pack and every bound.
        self.power_budget = soc.power_budget
        self._pack_kwargs = pack_kwargs
        self._pareto = pareto or ParetoCache(width)
        self._digital = digital_tasks(soc, self._pareto)
        self._schedules: dict[Partition, Schedule] = {}
        # refinement-propagation index: signature (sorted group sizes;
        # the group count is its length) -> cached partitions covering
        # every analog core, so propagation visits only candidate
        # signatures instead of scanning the whole schedule cache.
        # Partitions covering a core subset (legal but rare — absent
        # cores keep private wrappers) land in _partial and are checked
        # exactly, so indexing never changes semantics.
        self._by_signature: dict[tuple[int, ...], list[Partition]] = {}
        self._partial: list[Partition] = []
        self._n_cores = len(soc.analog_cores)
        self._context: PackContext | None = None
        self._invariant_bound: int | None = None
        #: number of actual packing runs performed (the paper's ``n``)
        self.evaluations = 0
        #: metering hook: called with the updated evaluation count
        #: after every actual packing run (cache hits never fire it).
        #: Budget meters and progress displays for the anytime
        #: optimizers (:mod:`repro.search`) attach here; an exception
        #: raised by the hook propagates to the caller, which is how a
        #: hard budget can abort an in-flight optimization.
        self.on_evaluation: Callable[[int], None] | None = None
        # telemetry: resolved once at construction (None = disabled,
        # the whole-subsystem cost is then one branch per schedule()).
        # Configure telemetry before building evaluators.
        self._obs = obs.state()
        self._obs_published: dict[str, int] = {}

    @property
    def pack_stats(self) -> PackStats | None:
        """Hot-path counters of the shared pack context (``None``
        before the first fast-engine pack)."""
        return self._context.stats if self._context is not None else None

    def publish_obs(self) -> None:
        """Fold hot-path counters into the telemetry registry.

        Pull model: :class:`~repro.tam.packing.PackStats` and
        :class:`~repro.tam.profile.FitStats` accumulate locally at
        full speed; this publishes the *delta* since the last publish,
        so it is safe (and expected) to call repeatedly — once per
        lane task, sweep job, or run end.  No-op when telemetry is
        disabled.
        """
        st = self._obs
        if st is None:
            return
        values: dict[str, int] = {"eval.packs": self.evaluations}
        stats = self.pack_stats
        if stats is not None:
            for key, value in stats.to_dict().items():
                values[f"pack.{key}"] = value
        if self._context is not None \
                and self._context.fit_stats is not None:
            for key, value in self._context.fit_stats.to_dict().items():
                values[f"pack.{key}"] = value
        published = self._obs_published
        for name, value in values.items():
            delta = value - published.get(name, 0)
            if delta:
                st.registry.counter(name).inc(delta)
                published[name] = value

    def warm(self) -> "ScheduleEvaluator":
        """Pre-build every lazily derived artifact; returns self.

        Forces the digital staircases (already built in the
        constructor), the partition-invariant lower bound, the shared
        :class:`~repro.tam.packing.PackContext`, and the all-sharing
        schedule (every cost normalization needs its makespan).  The
        parallel runtimes (:mod:`repro.search.parallel`,
        :mod:`repro.runner.pool`) call this from their worker
        initializers so the fork-once workers pay these costs exactly
        once, before the first real evaluation arrives.
        """
        with obs.span("evaluator.warm", width=self.width):
            _ = self.invariant_time_bound
            all_share: Partition = tuple(
                [tuple(sorted(core.name for core in self.soc.analog_cores))]
            )
            if all_share[0]:
                self.schedule(all_share)
        return self

    @property
    def invariant_time_bound(self) -> int:
        """Partition-invariant makespan lower bound, in TAM cycles.

        The volume and critical-task bounds over the full task set
        (digital staircases plus rigid analog rectangles) — and, under
        a power budget, the power-volume bound — do not depend on the
        sharing partition; computed once per evaluator.
        """
        if self._invariant_bound is None:
            tasks = self._digital + analog_tasks(self.soc.analog_cores, None)
            bound = max(
                volume_bound(tasks, self.width),
                critical_task_bound(tasks),
            )
            if self.power_budget is not None:
                bound = max(
                    bound, power_volume_bound(tasks, self.power_budget)
                )
            self._invariant_bound = bound
        return self._invariant_bound

    def makespan_lower_bound(self, partition: Partition) -> int:
        """Admissible makespan lower bound for *partition*, in cycles.

        The partition-invariant bound (volume, critical-task, and —
        under a power budget — power-volume) combined with the
        busiest-wrapper serialization bound (Section 3); no scheduling
        happens.  Not valid with ``include_self_test`` (BIST tasks add
        serialized wrapper time the core-level bound does not see).
        """
        return max(
            self.invariant_time_bound,
            true_lower_bound(self.soc.analog_cores, partition),
        )

    def _pack(self, partition: Partition) -> Schedule:
        tasks = self._digital + analog_tasks(
            self.soc.analog_cores,
            partition,
            include_self_test=self.include_self_test,
        )
        if self.engine == "reference":
            from ..tam.reference import reference_pack

            return reference_pack(
                tasks, self.width, power_budget=self.power_budget,
                **self._pack_kwargs,
            )
        if self.include_self_test:
            # self-test adds one task per wrapper, so the task *set*
            # varies with the partition and no context can be shared
            return pack(
                tasks, self.width, power_budget=self.power_budget,
                **self._pack_kwargs,
            )
        if self._context is None:
            reference = self._digital + analog_tasks(
                self.soc.analog_cores, None
            )
            self._context = PackContext(
                reference, self.width, power_budget=self.power_budget,
                **self._pack_kwargs,
            )
        return self._context.pack(tasks)

    @staticmethod
    def _signature(partition: Partition) -> tuple[int, ...]:
        # canonical partitions sort groups largest-first, so the size
        # tuple is already sorted descending
        return tuple(len(group) for group in partition)

    def schedule(self, partition: Partition) -> Schedule:
        """The (cached) schedule for *partition*.

        The returned schedule may have been inherited from a coarser
        partition when that one packed better; it is feasible for
        *partition* either way (its constraints are a superset).
        """
        cached = self._schedules.get(partition)
        if cached is not None:
            if self._obs is not None:
                self._obs.registry.counter("eval.schedule_hits").inc()
            return cached
        if self._obs is not None:
            t0 = time.monotonic()
            result = self._pack(partition)
            self._obs.registry.histogram("span.pack").observe(
                time.monotonic() - t0
            )
        else:
            result = self._pack(partition)
        self.evaluations += 1
        if self.on_evaluation is not None:
            self.on_evaluation(self.evaluations)
        # refinement monotonicity: inherit better coarse schedules, and
        # retro-propagate this result to cached refinements.  NOT valid
        # with self-test tasks: a refinement has *more* wrappers, hence
        # more BIST work, so coarse schedules do not cover its task set.
        if self.include_self_test:
            self._schedules[partition] = result
            return result
        result = self._propagate(partition, result)
        self._schedules[partition] = result
        signature = self._signature(partition)
        if sum(signature) == self._n_cores:
            self._by_signature.setdefault(signature, []).append(partition)
        else:
            self._partial.append(partition)
        return result

    def _propagate(self, partition: Partition, result: Schedule) -> Schedule:
        """Refinement-monotone exchange with the schedule cache.

        Phase 1 inherits the best schedule among cached *coarser*
        partitions (their constraints are a superset, so their
        schedules are feasible here); phase 2 pushes the winner to
        cached *finer* partitions it improves.  Candidates come from
        the signature index: a genuine full-cover refinement forces
        the coarser side to have fewer groups, a larger largest group
        and a larger smallest group (each coarse group is a disjoint
        union of fine groups), so only signatures passing those
        comparisons — plus the exact-checked partial-cover list — are
        visited at all.
        """
        signature = self._signature(partition)
        full = bool(signature) and sum(signature) == self._n_cores

        def compatible(as_coarser: bool):
            for other_sig, candidates in self._by_signature.items():
                if other_sig == signature:
                    # equal signatures admit no proper refinement
                    continue
                if as_coarser:
                    ok = (
                        len(other_sig) <= len(signature)
                        and other_sig[0] >= signature[0]
                        and other_sig[-1] >= signature[-1]
                    )
                else:
                    ok = (
                        len(other_sig) >= len(signature)
                        and other_sig[0] <= signature[0]
                        and other_sig[-1] <= signature[-1]
                    )
                if ok:
                    yield from candidates

        makespan = result.makespan
        # phase 1: inherit from coarser partitions
        coarser = compatible(True) if full else iter(self._schedules)
        for other in coarser:
            other_schedule = self._schedules[other]
            if other_schedule.makespan < makespan \
                    and refines(partition, other):
                result = other_schedule
                makespan = result.makespan
        if full:
            # the partial-cover list is outside the index: check exactly
            for other in self._partial:
                other_schedule = self._schedules[other]
                if other_schedule.makespan < makespan \
                        and refines(partition, other):
                    result = other_schedule
                    makespan = result.makespan
        # phase 2: push the winner to finer partitions it improves
        finer = compatible(False) if full else iter(list(self._schedules))
        for other in finer:
            if makespan < self._schedules[other].makespan \
                    and refines(other, partition):
                self._schedules[other] = result
        if full:
            for other in self._partial:
                if makespan < self._schedules[other].makespan \
                        and refines(other, partition):
                    self._schedules[other] = result
        return result

    def makespan(self, partition: Partition) -> int:
        """SOC test time under *partition*, in TAM cycles."""
        return self.schedule(partition).makespan

    @property
    def evaluated_partitions(self) -> tuple[Partition, ...]:
        """Partitions with a cached result, in insertion order."""
        return tuple(self._schedules)


@dataclass(frozen=True)
class CostBreakdown:
    """Cost components of one sharing combination at one TAM width."""

    partition: Partition
    makespan: int
    time_cost: float
    area_cost: float
    total_cost: float


class CostModel:
    """Eq. (2)/(3) cost evaluation on top of a :class:`ScheduleEvaluator`.

    :param soc: the mixed-signal SOC.
    :param width: TAM width ``W``.
    :param weights: cost weighting factors.
    :param area_model: Eq. (1) area model over the SOC's analog cores.
    :param evaluator: optional shared evaluator (lets several weight
        settings reuse one schedule cache, as Table 4 effectively does).
    """

    def __init__(
        self,
        soc: Soc,
        width: int,
        weights: CostWeights,
        area_model: AreaModel,
        evaluator: ScheduleEvaluator | None = None,
        **pack_kwargs,
    ):
        self.soc = soc
        self.width = width
        self.weights = weights
        self.area_model = area_model
        self.evaluator = evaluator or ScheduleEvaluator(
            soc, width, **pack_kwargs
        )
        self._all_share: Partition = tuple(
            [tuple(sorted(core.name for core in soc.analog_cores))]
        )

    @property
    def all_share_makespan(self) -> int:
        """Test time of the all-sharing combination (the normalizer)."""
        return self.evaluator.makespan(self._all_share)

    def time_cost(self, partition: Partition) -> float:
        """:math:`C_T`: makespan normalized to all-sharing, 0..100."""
        return (
            100.0
            * self.evaluator.makespan(partition)
            / self.all_share_makespan
        )

    def area_cost(self, partition: Partition) -> float:
        """:math:`C_A` capped at 100 (costs are defined on 1..100)."""
        return min(100.0, self.area_model.area_cost(partition))

    def total_cost(self, partition: Partition) -> float:
        """Eq. (2): the weighted total cost."""
        return (
            self.weights.time * self.time_cost(partition)
            + self.weights.area * self.area_cost(partition)
        )

    def preliminary_cost(self, partition: Partition) -> float:
        """Eq. (3): lower-bound-based estimate, no scheduling needed.

        This is the paper's printed form, normalized to the *analog
        lower bound* of the all-sharing combination.  It is a heuristic
        estimate, not an admissible bound: the all-sharing schedule's
        real makespan exceeds its analog bound whenever the digital
        side pads the schedule, which inflates the normalized value.
        Use :meth:`cost_lower_bound` when admissibility matters.
        """
        t_hat = normalized_lower_bound(
            self.soc.analog_cores, partition, truncate=False
        )
        return (
            self.weights.time * t_hat
            + self.weights.area * self.area_cost(partition)
        )

    def cost_lower_bound(self, partition: Partition) -> float:
        """Admissible Eq. (3) variant: a provable lower bound on
        :meth:`total_cost`, with no scheduling for *partition*.

        Two changes make the paper's preliminary cost exact: the
        analog serialization bound is combined with the
        partition-invariant volume/critical-task bounds, and the result
        is normalized by the all-sharing *makespan* (the same
        normalizer :meth:`time_cost` uses) instead of the all-sharing
        analog bound.  Since any schedule for *partition* lasts at
        least the combined bound, ``cost_lower_bound(p) <=
        total_cost(p)`` always holds — the property the search-layer
        pruning gate relies on.

        Returns ``-inf`` (gates nothing) with ``include_self_test``:
        BIST tasks add per-wrapper serialized time the core-level
        bound cannot see, which would break admissibility.
        """
        if self.evaluator.include_self_test:
            return float("-inf")
        t_bound = (
            100.0
            * self.evaluator.makespan_lower_bound(partition)
            / self.all_share_makespan
        )
        return (
            self.weights.time * t_bound
            + self.weights.area * self.area_cost(partition)
        )

    def gated_cost(
        self, partition: Partition, incumbent: float = float("inf")
    ) -> tuple[float, bool]:
        """Eq. (2) cost of *partition*, gated by *incumbent*.

        The evaluator-level pruning primitive behind the search layer's
        lower-bound gate: when even :meth:`cost_lower_bound` exceeds
        the best total cost any cooperating searcher has achieved (the
        *incumbent* — possibly read from a cross-process shared cell by
        :mod:`repro.search.parallel`), the TAM packing is skipped and
        the bound is returned as the answer.  Admissibility of the
        bound guarantees the skipped candidate could not have beaten
        the incumbent, so pruning never hides an improvement.

        :param partition: the sharing combination to cost.
        :param incumbent: best known total cost; ``inf`` disables
            gating (the first evaluation of any search).
        :returns: ``(cost, gated)`` — *gated* is true when the answer
            is the lower bound and no schedule was computed.
        """
        if incumbent != float("inf"):
            bound = self.cost_lower_bound(partition)
            if bound > incumbent:
                return bound, True
        return self.total_cost(partition), False

    def breakdown(self, partition: Partition) -> CostBreakdown:
        """All cost components of *partition* (forces an evaluation)."""
        return CostBreakdown(
            partition=partition,
            makespan=self.evaluator.makespan(partition),
            time_cost=self.time_cost(partition),
            area_cost=self.area_cost(partition),
            total_cost=self.total_cost(partition),
        )
