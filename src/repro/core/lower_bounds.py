"""Analog test-time lower bounds for sharing combinations (Section 3).

The tests of cores sharing a wrapper are serialized, so a shared
wrapper's time usage is the **sum** of its cores' test times, and the
analog portion of any schedule lasts at least as long as the busiest
shared wrapper:

.. math:: T_{LB} = \\max_{\\text{shared } G_j} \\; \\sum_{i \\in G_j} T_i

Table 1 normalizes this to the all-sharing combination (whose bound is
the total analog test time) — :func:`normalized_lower_bound` reproduces
that column of Table 1 *exactly* (the paper truncates to one decimal).

:func:`true_lower_bound` additionally counts private wrappers (a single
core's tests serialize through its own wrapper too), giving a tighter
admissible bound used by the scheduler-side pruning.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..soc.model import AnalogCore
from .sharing import Partition, shared_groups

__all__ = [
    "wrapper_usage",
    "analog_time_lower_bound",
    "true_lower_bound",
    "normalized_lower_bound",
    "truncate1",
]


def _cycles_by_name(cores: Sequence[AnalogCore]) -> dict[str, int]:
    return {core.name: core.total_cycles for core in cores}


def wrapper_usage(
    cores: Sequence[AnalogCore], group: Sequence[str]
) -> int:
    """Total serialized TAM cycles of the wrapper serving *group*."""
    cycles = _cycles_by_name(cores)
    try:
        return sum(cycles[name] for name in group)
    except KeyError as exc:
        raise ValueError(f"unknown analog core in group: {exc}") from exc


def analog_time_lower_bound(
    cores: Sequence[AnalogCore], partition: Partition
) -> int:
    """The paper's :math:`T_{LB}`: busiest **shared** wrapper usage.

    Returns 0 for the no-sharing partition (no shared wrapper), which is
    why Table 1 does not list that case.
    """
    shared = shared_groups(partition)
    if not shared:
        return 0
    return max(wrapper_usage(cores, group) for group in shared)


def true_lower_bound(
    cores: Sequence[AnalogCore], partition: Partition
) -> int:
    """Busiest wrapper usage counting private wrappers as well."""
    return max(wrapper_usage(cores, group) for group in partition)


def truncate1(value: float) -> float:
    """Truncate to one decimal, the paper's Table 1 rounding convention."""
    return math.floor(value * 10.0) / 10.0


def normalized_lower_bound(
    cores: Sequence[AnalogCore],
    partition: Partition,
    truncate: bool = True,
) -> float:
    """:math:`\\hat T_{LB}`: the bound normalized to the all-share case.

    The all-sharing combination's bound equals the total analog test
    time, so values land on 0..100; *truncate* reproduces the paper's
    one-decimal truncation (e.g. 42.75 prints as 42.7 in Table 1).
    """
    total = sum(core.total_cycles for core in cores)
    if total == 0:
        raise ValueError("cores have no test time")
    value = 100.0 * analog_time_lower_bound(cores, partition) / total
    return truncate1(value) if truncate else value
