"""Pareto frontier of the (time cost, area cost) trade-off.

The paper's Eq. (2) scalarizes the two objectives with weights
``(w_T, w_A)``.  Every weight setting selects a point on the Pareto
frontier of the (C_T, C_A) plane — computing the frontier once shows
*all* the plans any weight setting could ever pick, which is the more
useful artifact for a test engineer choosing a trade-off.

:func:`cost_frontier` evaluates the combinations through a
:class:`~repro.core.cost.CostModel` and returns the non-dominated set,
sorted by time cost; :func:`weight_for_segment` recovers, for each
adjacent frontier pair, the weight at which the optimizer's preference
flips between them.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from .cost import CostModel
from .sharing import Partition

__all__ = ["FrontierPoint", "cost_frontier", "weight_for_segment"]


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated sharing combination."""

    partition: Partition
    time_cost: float
    area_cost: float

    def dominates(self, other: "FrontierPoint") -> bool:
        """Weak dominance: no worse on both axes, better on one."""
        return (
            self.time_cost <= other.time_cost
            and self.area_cost <= other.area_cost
            and (
                self.time_cost < other.time_cost
                or self.area_cost < other.area_cost
            )
        )


def cost_frontier(
    model: CostModel, combinations: Sequence[Partition]
) -> list[FrontierPoint]:
    """Non-dominated (C_T, C_A) points over *combinations*.

    Evaluates every combination (one TAM run each, shared through the
    model's evaluator cache) and filters to the Pareto set, sorted by
    increasing time cost (hence decreasing area cost).

    :raises ValueError: if *combinations* is empty.
    """
    if not combinations:
        raise ValueError("at least one sharing combination is required")
    points = [
        FrontierPoint(
            partition=partition,
            time_cost=model.time_cost(partition),
            area_cost=model.area_cost(partition),
        )
        for partition in sorted(combinations, key=lambda p: (len(p), p))
    ]
    frontier: list[FrontierPoint] = []
    for candidate in points:
        if any(
            other.dominates(candidate)
            for other in points
            if other is not candidate
        ):
            continue
        # drop exact duplicates on both axes
        if any(
            abs(kept.time_cost - candidate.time_cost) < 1e-12
            and abs(kept.area_cost - candidate.area_cost) < 1e-12
            for kept in frontier
        ):
            continue
        frontier.append(candidate)
    frontier.sort(key=lambda p: (p.time_cost, p.area_cost, p.partition))
    return frontier


def weight_for_segment(
    faster: FrontierPoint, cheaper: FrontierPoint
) -> float:
    """Time weight ``w_T`` where preference flips between two points.

    For ``w_T`` above the returned value the *faster* point wins the
    Eq. (2) scalarization; below it, the *cheaper* (lower-area) one.

    :raises ValueError: if the points do not trade off (one dominates).
    """
    dt = cheaper.time_cost - faster.time_cost
    da = faster.area_cost - cheaper.area_cost
    if dt <= 0 or da <= 0:
        raise ValueError(
            "points must trade off: faster must be strictly faster, "
            "cheaper strictly cheaper"
        )
    # indifference: w_T * dt = (1 - w_T) * da
    return da / (da + dt)
