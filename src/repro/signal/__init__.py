"""Signal-processing substrate for the Figure 5 experiment."""

from .cutoff import CutoffFit, fit_cutoff
from .filters import Amplifier, ButterworthLowpass, NonlinearAmplifier
from .measurements import (
    measure_dc_offset,
    measure_dynamic_range_db,
    measure_gain_db,
    measure_iip3_dbv,
    measure_phase_mismatch_deg,
    measure_slew_rate,
    measure_thd_percent,
    two_tone_stimulus,
)
from .multitone import Tone, coherent_frequencies, multitone, time_axis
from .spectrum import (
    amplitude_spectrum,
    db,
    spectrum_db,
    tone_amplitude,
    tone_gains_db,
)

__all__ = [
    "Amplifier",
    "ButterworthLowpass",
    "CutoffFit",
    "NonlinearAmplifier",
    "Tone",
    "amplitude_spectrum",
    "coherent_frequencies",
    "db",
    "fit_cutoff",
    "measure_dc_offset",
    "measure_dynamic_range_db",
    "measure_gain_db",
    "measure_iip3_dbv",
    "measure_phase_mismatch_deg",
    "measure_slew_rate",
    "measure_thd_percent",
    "multitone",
    "spectrum_db",
    "time_axis",
    "tone_amplitude",
    "tone_gains_db",
    "two_tone_stimulus",
]
