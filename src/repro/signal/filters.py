"""Analog core transfer-function models.

The representative analog core of Section 5 is a low-pass filter with a
cut-off near 61 kHz; the paper extracts the cut-off from the spectrum of
the filter's response to a multi-tone stimulus.  This module models such
cores behaviourally:

* :class:`ButterworthLowpass` — an N-th order Butterworth low-pass with
  an exact analog magnitude response and a discrete-time simulation via
  the bilinear transform (scipy);
* :class:`Amplifier` — a flat-gain stage with optional slew-rate limit,
  modelling the paper's general-purpose amplifier core E.

Both expose the same two methods the test path needs: ``response(x, fs)``
(time-domain) and ``magnitude(f)`` (exact |H(f)|), so they are
interchangeable as device-under-test models.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

__all__ = ["ButterworthLowpass", "Amplifier", "NonlinearAmplifier"]


class ButterworthLowpass:
    """N-th order Butterworth low-pass filter core model.

    :param cutoff_hz: -3 dB cut-off frequency.
    :param order: filter order (the paper's filter rolls off like a
        low-order active RC filter; order 3 is representative).
    :param gain: pass-band gain (linear).
    """

    def __init__(self, cutoff_hz: float, order: int = 3, gain: float = 1.0):
        if cutoff_hz <= 0:
            raise ValueError(f"cutoff_hz must be positive, got {cutoff_hz}")
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        if gain <= 0:
            raise ValueError(f"gain must be positive, got {gain}")
        self.cutoff_hz = cutoff_hz
        self.order = order
        self.gain = gain
        # analog prototype, used for the exact magnitude response
        self._b_analog, self._a_analog = sp_signal.butter(
            order, 2 * np.pi * cutoff_hz, btype="low", analog=True
        )

    def magnitude(self, freq_hz: float | np.ndarray) -> float | np.ndarray:
        """Exact analog magnitude response |H(f)| (linear).

        Returns a scalar for scalar input, an array for array input.
        """
        scalar = np.isscalar(freq_hz)
        w = 2 * np.pi * np.atleast_1d(np.asarray(freq_hz, dtype=float))
        _, h = sp_signal.freqs(self._b_analog, self._a_analog, worN=w)
        result = self.gain * np.abs(h)
        return float(result[0]) if scalar else result

    def magnitude_db(self, freq_hz: float | np.ndarray) -> float | np.ndarray:
        """Exact analog magnitude response in dB."""
        return 20 * np.log10(self.magnitude(freq_hz))

    def response(self, x: np.ndarray, sample_freq_hz: float) -> np.ndarray:
        """Time-domain response to the sampled input *x*.

        The analog prototype is discretized with the bilinear transform
        with pre-warping at the cut-off, so the simulated -3 dB point
        matches :attr:`cutoff_hz` closely for ``fs >> f_c``.
        """
        if sample_freq_hz <= 2 * self.cutoff_hz:
            raise ValueError(
                f"sample rate {sample_freq_hz} Hz too low to simulate a "
                f"{self.cutoff_hz} Hz filter"
            )
        b, a = sp_signal.bilinear(
            self._b_analog, self._a_analog, fs=sample_freq_hz
        )
        return self.gain * sp_signal.lfilter(b, a, np.asarray(x, dtype=float))


class Amplifier:
    """Flat-gain amplifier core model with an optional slew-rate limit.

    :param gain: voltage gain (linear).
    :param slew_rate_v_per_s: maximum output slope; ``None`` disables
        slew limiting.
    """

    def __init__(self, gain: float = 2.0, slew_rate_v_per_s: float | None = None):
        if gain <= 0:
            raise ValueError(f"gain must be positive, got {gain}")
        if slew_rate_v_per_s is not None and slew_rate_v_per_s <= 0:
            raise ValueError(
                f"slew_rate_v_per_s must be positive, got {slew_rate_v_per_s}"
            )
        self.gain = gain
        self.slew_rate_v_per_s = slew_rate_v_per_s

    def magnitude(self, freq_hz: float | np.ndarray) -> np.ndarray:
        """Small-signal magnitude response (flat)."""
        return self.gain * np.ones_like(np.asarray(freq_hz, dtype=float))

    def response(self, x: np.ndarray, sample_freq_hz: float) -> np.ndarray:
        """Time-domain response: gain plus slew limiting if configured."""
        y = self.gain * np.asarray(x, dtype=float)
        if self.slew_rate_v_per_s is None or len(y) == 0:
            return y
        max_step = self.slew_rate_v_per_s / sample_freq_hz
        out = np.empty_like(y)
        out[0] = y[0]
        for i in range(1, len(y)):
            delta = np.clip(y[i] - out[i - 1], -max_step, max_step)
            out[i] = out[i - 1] + delta
        return out


class NonlinearAmplifier:
    """Memoryless weakly-nonlinear amplifier: ``y = a1 x + a2 x^2 + a3 x^3``.

    The standard model behind the harmonic-distortion and two-tone
    intercept tests of Table 2: the quadratic term produces even
    harmonics, the cubic term produces third harmonics and the IM3
    products at ``2 f1 - f2`` / ``2 f2 - f1``; the textbook intercept is

    .. math:: A_{IIP3} = \\sqrt{\\tfrac{4}{3} \\, |a_1 / a_3|}

    exposed as :attr:`iip3_amplitude_v` so measurements can be checked
    against ground truth.

    :param a1: linear gain.
    :param a2: quadratic coefficient (1/V).
    :param a3: cubic coefficient (1/V^2); compressive when ``a3 a1 < 0``.
    """

    def __init__(self, a1: float = 2.0, a2: float = 0.0, a3: float = -0.1):
        if a1 == 0:
            raise ValueError("a1 (linear gain) must be non-zero")
        self.a1 = a1
        self.a2 = a2
        self.a3 = a3

    @property
    def iip3_amplitude_v(self) -> float:
        """Textbook input-referred third-order intercept amplitude."""
        if self.a3 == 0:
            return float("inf")
        return float(np.sqrt(4.0 / 3.0 * abs(self.a1 / self.a3)))

    def magnitude(self, freq_hz: float | np.ndarray) -> np.ndarray:
        """Small-signal magnitude response (flat at |a1|)."""
        return abs(self.a1) * np.ones_like(
            np.asarray(freq_hz, dtype=float)
        )

    def response(self, x: np.ndarray, sample_freq_hz: float) -> np.ndarray:
        """Memoryless polynomial response (rate unused, kept for the
        common core-model interface)."""
        x = np.asarray(x, dtype=float)
        return self.a1 * x + self.a2 * x**2 + self.a3 * x**3
