"""Spectrum analysis for test responses.

The paper post-processes HSPICE transient data into frequency spectra
(Figure 5) and reads tone gains off them.  This module provides the
equivalent: amplitude spectra, single-bin tone-gain extraction (via the
Goertzel-style projection, robust to non-bin frequencies), and dB
conversion helpers.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "amplitude_spectrum",
    "tone_amplitude",
    "tone_gains_db",
    "db",
    "spectrum_db",
]


def db(x: np.ndarray | float, floor: float = 1e-12) -> np.ndarray:
    """20*log10 with a floor to avoid -inf on empty bins."""
    return 20 * np.log10(np.maximum(np.abs(x), floor))


def amplitude_spectrum(
    x: np.ndarray, sample_freq_hz: float
) -> tuple[np.ndarray, np.ndarray]:
    """One-sided amplitude spectrum of *x*.

    :returns: ``(freqs_hz, amplitudes)`` where amplitudes are scaled so
        a full-scale sine at a bin frequency reads its peak amplitude.
    """
    x = np.asarray(x, dtype=float)
    n = len(x)
    if n < 2:
        raise ValueError(f"need at least 2 samples, got {n}")
    spec = np.fft.rfft(x)
    freqs = np.fft.rfftfreq(n, d=1.0 / sample_freq_hz)
    amplitude = 2 * np.abs(spec) / n
    amplitude[0] /= 2
    if n % 2 == 0:
        amplitude[-1] /= 2
    return freqs, amplitude


def spectrum_db(
    x: np.ndarray, sample_freq_hz: float
) -> tuple[np.ndarray, np.ndarray]:
    """One-sided amplitude spectrum in dB (see :func:`amplitude_spectrum`)."""
    freqs, amp = amplitude_spectrum(x, sample_freq_hz)
    return freqs, db(amp)


def tone_amplitude(
    x: np.ndarray, sample_freq_hz: float, freq_hz: float
) -> float:
    """Amplitude of the sinusoidal component of *x* at *freq_hz*.

    Computed by projecting onto the complex exponential at *freq_hz*
    (a single-frequency DFT, i.e. the Goertzel measurement), which works
    for frequencies off the FFT grid as well — at the cost of spectral
    leakage from other tones, exactly as in a windowless bench
    measurement.
    """
    x = np.asarray(x, dtype=float)
    n = len(x)
    if n < 2:
        raise ValueError(f"need at least 2 samples, got {n}")
    if not 0 < freq_hz < sample_freq_hz / 2:
        raise ValueError(
            f"freq_hz must lie in (0, fs/2), got {freq_hz} at fs="
            f"{sample_freq_hz}"
        )
    t = np.arange(n) / sample_freq_hz
    projection = x @ np.exp(-2j * np.pi * freq_hz * t)
    return float(2 * np.abs(projection) / n)


def tone_gains_db(
    stimulus: np.ndarray,
    response: np.ndarray,
    sample_freq_hz: float,
    freqs_hz: tuple[float, ...] | list[float],
) -> list[float]:
    """Per-tone gain (dB) of *response* relative to *stimulus*.

    :raises ValueError: if a stimulus tone measures zero amplitude.
    """
    gains: list[float] = []
    for f in freqs_hz:
        a_in = tone_amplitude(stimulus, sample_freq_hz, f)
        a_out = tone_amplitude(response, sample_freq_hz, f)
        if a_in <= 0:
            raise ValueError(f"stimulus has no energy at {f} Hz")
        gains.append(float(db(a_out / a_in)))
    return gains
