"""Cut-off frequency extrapolation from multi-tone gain measurements.

The paper's ``f_c`` test measures the filter's gain at a handful of tone
frequencies and *extrapolates* the -3 dB cut-off from the resulting
points (Section 5: "The frequency spectrum of the resulting signal is
used to extrapolate the cut-off frequency of the filter").

Given tone frequencies and measured gains, we fit the magnitude model of
an N-th order all-pole low-pass,

.. math:: |H(f)|^2 = \\frac{g^2}{1 + (f / f_c)^{2N}}

over pass-band gain ``g`` and cut-off ``f_c`` by least squares on the dB
error, and report the fitted ``f_c``.  With only three tones this is the
same information the paper's spectra carry.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

__all__ = ["fit_cutoff", "CutoffFit"]

from dataclasses import dataclass


@dataclass(frozen=True)
class CutoffFit:
    """Result of a cut-off extrapolation."""

    cutoff_hz: float
    passband_gain_db: float
    residual_db: float

    def error_vs(self, reference_hz: float) -> float:
        """Relative cut-off error against a reference, as a fraction."""
        return abs(self.cutoff_hz - reference_hz) / reference_hz


def _model_db(freqs: np.ndarray, cutoff: float, gain_db: float, order: int):
    return gain_db - 10 * np.log10(1.0 + (freqs / cutoff) ** (2 * order))


def fit_cutoff(
    freqs_hz: tuple[float, ...] | list[float],
    gains_db: tuple[float, ...] | list[float],
    order: int = 3,
) -> CutoffFit:
    """Fit cut-off frequency and pass-band gain to tone measurements.

    :param freqs_hz: tone frequencies (at least two, spanning the knee).
    :param gains_db: measured gains at those frequencies, in dB.
    :param order: assumed filter order of the device under test.
    :returns: the fitted :class:`CutoffFit`.
    :raises ValueError: on inconsistent input sizes or degenerate data.
    """
    freqs = np.asarray(freqs_hz, dtype=float)
    gains = np.asarray(gains_db, dtype=float)
    if freqs.shape != gains.shape:
        raise ValueError(
            f"freqs and gains must align, got {freqs.shape} vs {gains.shape}"
        )
    if len(freqs) < 2:
        raise ValueError("need at least two tones to extrapolate a cut-off")
    if np.any(freqs <= 0):
        raise ValueError("tone frequencies must be positive")
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")

    # initial guesses: gain from the lowest tone, cut-off from the tone
    # closest to 3 dB below it (or the geometric mean as a fallback)
    order_idx = np.argsort(freqs)
    freqs = freqs[order_idx]
    gains = gains[order_idx]
    g0 = gains[0]
    drops = g0 - gains
    knee_candidates = freqs[drops >= 1.0]
    fc0 = float(knee_candidates[0]) if len(knee_candidates) else float(
        np.sqrt(freqs[0] * freqs[-1])
    )

    def residuals(params: np.ndarray) -> np.ndarray:
        cutoff, gain_db = params
        return _model_db(freqs, abs(cutoff), gain_db, order) - gains

    result = optimize.least_squares(
        residuals,
        x0=np.array([fc0, g0]),
        bounds=([freqs[0] * 1e-3, g0 - 60.0], [freqs[-1] * 1e3, g0 + 60.0]),
    )
    cutoff = float(abs(result.x[0]))
    gain_db = float(result.x[1])
    residual = float(np.sqrt(np.mean(result.fun**2)))
    return CutoffFit(
        cutoff_hz=cutoff, passband_gain_db=gain_db, residual_db=residual
    )
