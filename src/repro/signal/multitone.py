"""Multi-tone test stimulus generation.

The paper's cut-off frequency test applies a multi-tone signal to the
filter core and extrapolates the cut-off from the spectrum of the
response (Section 5; the demonstration uses an input "with only three
frequencies").  This module generates such stimuli and snaps tone
frequencies onto FFT bins for coherent sampling when asked.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Tone", "multitone", "coherent_frequencies", "time_axis"]


@dataclass(frozen=True)
class Tone:
    """One sinusoidal component of a multi-tone stimulus."""

    freq_hz: float
    amplitude: float = 1.0
    phase_rad: float = 0.0

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise ValueError(f"freq_hz must be positive, got {self.freq_hz}")
        if self.amplitude <= 0:
            raise ValueError(
                f"amplitude must be positive, got {self.amplitude}"
            )


def time_axis(n_samples: int, sample_freq_hz: float) -> np.ndarray:
    """Sampling instants ``0, 1/fs, ..., (n-1)/fs`` as a float array."""
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    if sample_freq_hz <= 0:
        raise ValueError(
            f"sample_freq_hz must be positive, got {sample_freq_hz}"
        )
    return np.arange(n_samples) / sample_freq_hz


def multitone(
    tones: tuple[Tone, ...] | list[Tone],
    sample_freq_hz: float,
    n_samples: int,
) -> np.ndarray:
    """Sampled sum of the given tones.

    :param tones: the sinusoidal components.
    :param sample_freq_hz: sampling rate of the generated sequence.
    :param n_samples: number of samples.
    :returns: float array of length *n_samples*.
    :raises ValueError: if no tones are given or a tone exceeds Nyquist
        (multi-tone stimuli are baseband; undersampled single-tone tests
        are built directly, not through this helper).
    """
    if not tones:
        raise ValueError("at least one tone is required")
    t = time_axis(n_samples, sample_freq_hz)
    signal = np.zeros(n_samples)
    for tone in tones:
        if tone.freq_hz >= sample_freq_hz / 2:
            raise ValueError(
                f"tone at {tone.freq_hz} Hz exceeds Nyquist for "
                f"fs={sample_freq_hz} Hz"
            )
        signal += tone.amplitude * np.sin(
            2 * np.pi * tone.freq_hz * t + tone.phase_rad
        )
    return signal


def coherent_frequencies(
    target_freqs_hz: tuple[float, ...] | list[float],
    sample_freq_hz: float,
    n_samples: int,
) -> tuple[float, ...]:
    """Snap target frequencies onto FFT bins (coherent sampling).

    Each returned frequency is ``k * fs / N`` with odd ``k`` closest to
    the target (odd bins avoid shared harmonics between tones, the usual
    multi-tone test practice).  Distinct targets map to distinct bins.

    :raises ValueError: if two targets collapse onto the same bin.
    """
    bin_width = sample_freq_hz / n_samples
    chosen: list[float] = []
    used: set[int] = set()
    for f in target_freqs_hz:
        k = round(f / bin_width)
        if k % 2 == 0:
            k += 1 if (f / bin_width) >= k else -1
        k = max(1, k)
        while k in used:
            k += 2
        used.add(k)
        chosen.append(k * bin_width)
    if len(chosen) != len(target_freqs_hz):
        raise ValueError("tone list collapsed onto shared bins")
    return tuple(chosen)
