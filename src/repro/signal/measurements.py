"""Specification-based analog measurements (the Table 2 test types).

The paper's analog cores are tested against their specifications:
pass-band gain, cut-off frequency, stop-band attenuation, total harmonic
distortion, third-order input intercept point, DC offset, phase
mismatch, slew rate and dynamic range.  This module implements each
measurement on sampled data, so a wrapped core can be run through its
*entire* Table 2 test list behaviourally (see
``examples/full_core_test.py``).

All routines take the stimulus/response sample streams plus the
sampling rate, mirroring what the wrapper's digital side sees.
"""

from __future__ import annotations

import math

import numpy as np

from .multitone import Tone, multitone
from .spectrum import tone_amplitude

__all__ = [
    "measure_gain_db",
    "measure_dc_offset",
    "measure_thd_percent",
    "measure_iip3_dbv",
    "measure_phase_mismatch_deg",
    "measure_slew_rate",
    "measure_dynamic_range_db",
    "two_tone_stimulus",
]


def measure_gain_db(
    stimulus: np.ndarray,
    response: np.ndarray,
    sample_freq_hz: float,
    freq_hz: float,
) -> float:
    """Gain at *freq_hz* in dB (the ``g_pb`` / ``gain`` tests)."""
    a_in = tone_amplitude(stimulus, sample_freq_hz, freq_hz)
    a_out = tone_amplitude(response, sample_freq_hz, freq_hz)
    if a_in <= 0:
        raise ValueError(f"stimulus has no energy at {freq_hz} Hz")
    return float(20 * np.log10(max(a_out, 1e-12) / a_in))


def measure_dc_offset(response: np.ndarray) -> float:
    """Mean output level (the ``dc_offset`` test), in volts."""
    response = np.asarray(response, dtype=float)
    if response.size == 0:
        raise ValueError("empty response")
    return float(np.mean(response))


def measure_thd_percent(
    response: np.ndarray,
    sample_freq_hz: float,
    fundamental_hz: float,
    n_harmonics: int = 5,
) -> float:
    """Total harmonic distortion (the CODEC ``thd`` test), in percent.

    THD = sqrt(sum of squared harmonic amplitudes) / fundamental, over
    the harmonic orders ``2 .. n_harmonics`` inclusive (the fundamental
    is order 1, so ``n_harmonics`` names the highest order measured —
    the datasheet "THD up to the Nth harmonic" convention).  Harmonics
    beyond Nyquist are skipped.

    :raises ValueError: if the fundamental has no energy, or
        ``n_harmonics < 2`` (no harmonic would be measured).
    """
    if n_harmonics < 2:
        raise ValueError(f"n_harmonics must be >= 2, got {n_harmonics}")
    fundamental = tone_amplitude(response, sample_freq_hz, fundamental_hz)
    if fundamental <= 0:
        raise ValueError(
            f"response has no energy at the fundamental {fundamental_hz} Hz"
        )
    total = 0.0
    for k in range(2, n_harmonics + 1):
        f_k = k * fundamental_hz
        if f_k >= sample_freq_hz / 2:
            break
        total += tone_amplitude(response, sample_freq_hz, f_k) ** 2
    return float(100.0 * math.sqrt(total) / fundamental)


def two_tone_stimulus(
    f1_hz: float,
    f2_hz: float,
    amplitude: float,
    sample_freq_hz: float,
    n_samples: int,
) -> np.ndarray:
    """The classic two-tone IIP3 stimulus (equal-amplitude tones)."""
    return multitone(
        (Tone(f1_hz, amplitude), Tone(f2_hz, amplitude)),
        sample_freq_hz,
        n_samples,
    )


def measure_iip3_dbv(
    response: np.ndarray,
    sample_freq_hz: float,
    f1_hz: float,
    f2_hz: float,
    input_amplitude: float,
) -> float:
    """Third-order input intercept from a two-tone test, in dBV.

    With tones at f1 < f2, the third-order intermodulation products land
    at ``2 f1 - f2`` and ``2 f2 - f1``.  The intercept extrapolates from
    the measured carrier-to-IM3 ratio:

    .. math:: IIP3 = P_{in} + \\Delta / 2

    with ``P_in`` the per-tone input level (dBV) and ``Delta`` the
    carrier-to-IM3 ratio (dB).  For a perfectly linear device the IM3
    floor makes the intercept arbitrarily large.
    """
    if not 0 < f1_hz < f2_hz:
        raise ValueError(
            f"need 0 < f1 < f2, got f1={f1_hz}, f2={f2_hz}"
        )
    if input_amplitude <= 0:
        raise ValueError(
            f"input_amplitude must be positive, got {input_amplitude}"
        )
    im3_low = 2 * f1_hz - f2_hz
    im3_high = 2 * f2_hz - f1_hz
    carrier = max(
        tone_amplitude(response, sample_freq_hz, f1_hz),
        tone_amplitude(response, sample_freq_hz, f2_hz),
    )
    im3 = 1e-12
    for f in (im3_low, im3_high):
        if 0 < f < sample_freq_hz / 2:
            im3 = max(im3, tone_amplitude(response, sample_freq_hz, f))
    p_in_dbv = 20 * math.log10(input_amplitude)
    delta_db = 20 * math.log10(carrier / im3)
    return float(p_in_dbv + delta_db / 2)


def measure_phase_mismatch_deg(
    response_i: np.ndarray,
    response_q: np.ndarray,
    sample_freq_hz: float,
    freq_hz: float,
) -> float:
    """I/Q phase mismatch at *freq_hz* in degrees (``phase_mismatch``).

    The two channels of an I-Q pair should be exactly 90 degrees apart;
    the returned value is the deviation from quadrature, in (-180, 180].
    """
    n = len(response_i)
    if len(response_q) != n:
        raise ValueError(
            f"channel lengths differ: {n} vs {len(response_q)}"
        )
    t = np.arange(n) / sample_freq_hz
    probe = np.exp(-2j * np.pi * freq_hz * t)
    phase_i = np.angle(np.dot(response_i, probe))
    phase_q = np.angle(np.dot(response_q, probe))
    mismatch = math.degrees(phase_i - phase_q) - 90.0
    while mismatch <= -180.0:
        mismatch += 360.0
    while mismatch > 180.0:
        mismatch -= 360.0
    return float(mismatch)


def measure_slew_rate(
    response: np.ndarray, sample_freq_hz: float
) -> float:
    """Maximum output slope in volts/second (the ``slew_rate`` test)."""
    response = np.asarray(response, dtype=float)
    if response.size < 2:
        raise ValueError("need at least two samples")
    return float(np.max(np.abs(np.diff(response))) * sample_freq_hz)


def measure_dynamic_range_db(
    response_full_scale: np.ndarray,
    response_idle: np.ndarray,
    sample_freq_hz: float,
    freq_hz: float,
) -> float:
    """Dynamic range: full-scale tone vs idle-channel noise, in dB.

    :param response_full_scale: response to a full-scale tone at
        *freq_hz*.
    :param response_idle: response with the input grounded (noise
        floor).
    """
    signal = tone_amplitude(response_full_scale, sample_freq_hz, freq_hz)
    idle = np.asarray(response_idle, dtype=float)
    if idle.size == 0:
        raise ValueError("empty idle-channel response")
    noise = float(np.std(idle - np.mean(idle)))
    noise = max(noise, 1e-12)
    return float(20 * np.log10(max(signal, 1e-12) / noise))
