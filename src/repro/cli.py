"""Command-line interface: regenerate every paper table and figure.

Usage::

    python -m repro table1              # area costs + lower bounds
    python -m repro table2              # analog test requirements audit
    python -m repro table3 [--widths 32 48 64]
    python -m repro table4 [--delta 0]
    python -m repro fig4                # converter complexity / area
    python -m repro fig5                # wrapped vs direct cut-off test
    python -m repro plan  [--width 32 --wt 0.5]
    python -m repro all                 # everything (slow)

Each subcommand prints the corresponding table in the paper's layout;
``plan`` runs the end-to-end flow on ``p93791m`` and prints the chosen
plan plus its Gantt chart.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import CostWeights, plan_test, render_gantt
from .experiments import (
    ExperimentContext,
    run_fig4,
    run_fig5,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-msoc",
        description=(
            "Reproduction of 'Test Planning for Mixed-Signal SOCs with "
            "Wrapped Analog Cores' (DATE 2005)"
        ),
    )
    parser.add_argument(
        "--effort",
        choices=("full", "medium", "quick"),
        default="medium",
        help="rectangle-packer effort preset (default: medium)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="area costs and analog lower bounds")
    sub.add_parser("table2", help="analog test requirements audit")

    p3 = sub.add_parser("table3", help="normalized test times per width")
    p3.add_argument(
        "--widths", type=int, nargs="+", default=[32, 48, 64],
        help="TAM widths to evaluate",
    )

    p4 = sub.add_parser("table4", help="Cost_Optimizer vs exhaustive")
    p4.add_argument(
        "--widths", type=int, nargs="+", default=[32, 40, 48, 56, 64]
    )
    p4.add_argument("--delta", type=float, default=0.0)

    sub.add_parser("fig4", help="modular converter complexity and area")

    p5 = sub.add_parser("fig5", help="wrapped vs direct cut-off test")
    p5.add_argument(
        "--no-plots", action="store_true", help="omit ASCII spectra"
    )

    pp = sub.add_parser("plan", help="end-to-end planning on p93791m")
    pp.add_argument("--width", type=int, default=32)
    pp.add_argument(
        "--wt", type=float, default=0.5,
        help="test-time weight w_T (area weight is 1 - w_T)",
    )
    pp.add_argument("--delta", type=float, default=0.0)
    pp.add_argument(
        "--exhaustive", action="store_true",
        help="evaluate every combination instead of the heuristic",
    )
    pp.add_argument(
        "--gantt", action="store_true", help="print the schedule Gantt"
    )

    pr = sub.add_parser(
        "report", help="write a consolidated markdown report"
    )
    pr.add_argument(
        "--out", default="REPORT.md", help="output file path"
    )
    pr.add_argument(
        "--fast", action="store_true",
        help="skip the scheduling-heavy Tables 3 and 4",
    )

    sub.add_parser("all", help="run every experiment (slow)")
    return parser


def _run_command(command: str, args: argparse.Namespace) -> str:
    context = ExperimentContext(effort=args.effort)
    if command == "table1":
        return run_table1(context).render()
    if command == "table2":
        return run_table2(context).render()
    if command == "table3":
        return run_table3(context, widths=tuple(args.widths)).render()
    if command == "table4":
        return run_table4(
            context, widths=tuple(args.widths), delta=args.delta
        ).render()
    if command == "fig4":
        return run_fig4().render()
    if command == "fig5":
        return run_fig5().render(plots=not args.no_plots)
    if command == "report":
        from pathlib import Path

        from .experiments import generate_report

        text = generate_report(context, include_slow=not args.fast)
        Path(args.out).write_text(text)
        return f"wrote {args.out} ({len(text.splitlines())} lines)"
    if command == "plan":
        weights = CostWeights(time=args.wt, area=1.0 - args.wt)
        plan = plan_test(
            width=args.width,
            weights=weights,
            delta=args.delta,
            exhaustive=args.exhaustive,
            **context.pack_kwargs,
        )
        output = plan.summary()
        if args.gantt:
            output += "\n\n" + render_gantt(plan.schedule)
        return output
    raise ValueError(f"unknown command {command!r}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    started = time.time()
    if args.command == "all":
        for command in ("table1", "table2", "fig4", "fig5", "table3",
                        "table4"):
            sub_args = parser.parse_args([
                "--effort", args.effort, command
            ])
            print(_run_command(command, sub_args))
            print()
    else:
        print(_run_command(args.command, args))
    elapsed = time.time() - started
    if elapsed > 5:
        print(f"\n[{elapsed:.0f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
