"""Command-line interface: paper tables/figures, scenarios, and sweeps.

Usage::

    python -m repro table1              # area costs + lower bounds
    python -m repro table2              # analog test requirements audit
    python -m repro table3 [--widths 32 48 64]
    python -m repro table4 [--delta 0]
    python -m repro fig4                # converter complexity / area
    python -m repro fig5                # wrapped vs direct cut-off test
    python -m repro plan  [--width 32 --wt 0.5]
    python -m repro all                 # everything (slow)
    python -m repro workloads           # list registered scenarios
    python -m repro strategies          # list anytime search strategies
    python -m repro generate --seed 7   # emit a synthetic .soc file
    python -m repro --workload big12m profile \\
        --evals 40 --baseline           # hot-path throughput microbench
    python -m repro --workload big12m optimize \\
        --strategy anneal --budget 200  # budgeted anytime search
    python -m repro sweep --preset p93791m,d695m --widths 16,24,32 \\
        --jobs 4                        # parallel cached batch sweep
    python -m repro --obs-dir runs/r1 optimize --workers 2
    python -m repro report --run runs/r1   # render the telemetry
    python -m repro watch runs/r1          # live view while it runs
    python -m repro --obs-root ledger optimize --workers 2
    python -m repro --obs-root ledger runs list
    python -m repro --obs-root ledger runs regress   # trend gate

Each table/figure subcommand prints the corresponding table in the
paper's layout; the global ``--workload`` flag points the
SOC-dependent ones (``table1``-``table4``, ``plan``, ``report``,
``optimize``) at any registered scenario instead of the default
``p93791m`` (``fig4`` and ``fig5`` model converters and signals, not
SOCs, so the flag does not affect them).  ``sweep`` fans a (workload x
width x weight) grid across worker processes with an on-disk result
cache, streaming JSONL; its ``--strategy`` axis races anytime
optimizers (``optimize`` runs a single one and writes its
best-cost-vs-evaluations trace).  The global ``--obs-dir`` flag turns
on :mod:`repro.obs` telemetry for any run — manifest, merged metrics,
lane traces — which ``report --run DIR`` renders and ``watch RUNDIR``
tails live.  The global ``--obs-root`` flag points at a persistent
run ledger: finished runs fold into it at exit and the ``runs``
subcommands (``list``/``show``/``compare``/``diff``/``regress``/
``gc``/``fold``) query it.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from . import CostWeights, format_partition, plan_test, render_gantt, \
    workloads
from .experiments import (
    ExperimentContext,
    run_fig4,
    run_fig5,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)

__all__ = ["main", "build_parser"]


class _CliError(Exception):
    """Bad user input: reported as a one-line diagnostic, exit code 2.

    Raised only at input-validation boundaries so genuine internal
    failures keep their tracebacks.
    """


class _GateFailure(Exception):
    """A check command failed its gate: the message is printed as
    normal output and the process exits 1 (CI's failure signal,
    distinct from exit 2 = bad usage)."""


def _int_list(tokens: list[str]) -> tuple[int, ...]:
    """Flatten ``["16,24", "32"]``-style width arguments to ints."""
    values: list[int] = []
    for token in tokens:
        for part in token.split(","):
            if part:
                try:
                    values.append(int(part))
                except ValueError:
                    raise _CliError(
                        f"invalid integer {part!r} in {token!r}"
                    ) from None
    return tuple(values)


def _str_list(tokens: list[str]) -> tuple[str, ...]:
    """Flatten comma- and space-separated name arguments."""
    values: list[str] = []
    for token in tokens:
        values.extend(part for part in token.split(",") if part)
    return tuple(values)


def _obs_manifest(command: str, params: dict, engine: str | None = None):
    """Pin the run's inputs into ``<run_dir>/manifest.json`` (no-op when
    telemetry is off)."""
    from . import obs

    state = obs.state()
    if state is None:
        return
    from .runner.engine import CACHE_VERSION

    obs.RunManifest.create(
        command, params=params, cache_version=CACHE_VERSION,
        engine=engine,
    ).write(state.run_dir)


def _obs_artifacts(trace_records=None, lane_records=None) -> None:
    """Drop the run artifacts ``repro report --run`` reads —
    ``trace.jsonl`` (anytime trace) and ``lanes.json`` (per-lane
    rollup) — into the run directory (no-op when telemetry is off)."""
    import json as _json

    from . import obs
    from .reporting import write_jsonl

    state = obs.state()
    if state is None:
        return
    if trace_records is not None:
        write_jsonl(trace_records, state.run_dir / obs.TRACE_FILE)
    if lane_records is not None:
        (state.run_dir / obs.LANES_FILE).write_text(
            _json.dumps(lane_records, indent=2) + "\n"
        )


def _finalize_obs(obs_root: str | None = None) -> None:
    """Flush the parent's telemetry, fold every process's spool into
    ``<run_dir>/metrics.json``, and — when a ledger root is active —
    record the finished run there (no-op when telemetry is off)."""
    from . import obs

    state = obs.state()
    if state is None:
        return
    obs.flush()
    obs.aggregate(state.run_dir)
    if obs_root:
        try:
            record = obs.RunLedger(obs_root).fold_run(state.run_dir)
        except OSError as exc:
            print(f"[obs] ledger fold failed: {exc}", file=sys.stderr)
        else:
            print(
                f"[obs] recorded run {record['run_id'][:12]} -> "
                f"{obs_root}", file=sys.stderr,
            )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-msoc",
        description=(
            "Reproduction of 'Test Planning for Mixed-Signal SOCs with "
            "Wrapped Analog Cores' (DATE 2005)"
        ),
    )
    parser.add_argument(
        "--effort",
        choices=("full", "medium", "quick"),
        default="medium",
        help="rectangle-packer effort preset (default: medium)",
    )
    parser.add_argument(
        "--workload",
        default="p93791m",
        help="registered scenario for the SOC-dependent commands "
             "(table1-4, plan, report; default: p93791m; see "
             "'repro workloads')",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="workload seed (default: the preset's own)",
    )
    parser.add_argument(
        "--obs-dir", default=None, metavar="DIR",
        help="enable telemetry, rooting the run directory at DIR: a "
             "manifest, merged metrics, per-lane traces, and span "
             "events land there (render with 'report --run DIR'; "
             "default: telemetry off)",
    )
    parser.add_argument(
        "--obs-root", default=os.environ.get("REPRO_OBS_ROOT"),
        metavar="DIR",
        help="persistent run ledger: finished runs fold into "
             "DIR/index.jsonl + DIR/runs/ for the 'runs' subcommands; "
             "implies telemetry (a run dir is auto-created under "
             "DIR/rundirs/ when --obs-dir is absent; default: "
             "$REPRO_OBS_ROOT)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="area costs and analog lower bounds")
    sub.add_parser("table2", help="analog test requirements audit")

    p3 = sub.add_parser("table3", help="normalized test times per width")
    p3.add_argument(
        "--widths", type=int, nargs="+", default=[32, 48, 64],
        help="TAM widths to evaluate",
    )

    p4 = sub.add_parser("table4", help="Cost_Optimizer vs exhaustive")
    p4.add_argument(
        "--widths", type=int, nargs="+", default=[32, 40, 48, 56, 64]
    )
    p4.add_argument("--delta", type=float, default=0.0)

    sub.add_parser("fig4", help="modular converter complexity and area")

    p5 = sub.add_parser("fig5", help="wrapped vs direct cut-off test")
    p5.add_argument(
        "--no-plots", action="store_true", help="omit ASCII spectra"
    )

    pp = sub.add_parser("plan", help="end-to-end planning on p93791m")
    pp.add_argument("--width", type=int, default=32)
    pp.add_argument(
        "--wt", type=float, default=0.5,
        help="test-time weight w_T (area weight is 1 - w_T)",
    )
    pp.add_argument("--delta", type=float, default=0.0)
    pp.add_argument(
        "--power-budget", type=int, default=None,
        help="SOC instantaneous power ceiling (overrides the "
             "workload's own; requires power-rated tests to bind)",
    )
    pp.add_argument(
        "--exhaustive", action="store_true",
        help="evaluate every combination instead of the heuristic",
    )
    pp.add_argument(
        "--gantt", action="store_true", help="print the schedule Gantt"
    )

    pr = sub.add_parser(
        "report", help="write a consolidated markdown report, or "
                       "render a telemetry run directory (--run)"
    )
    pr.add_argument(
        "--out", default="REPORT.md", help="output file path"
    )
    pr.add_argument(
        "--fast", action="store_true",
        help="skip the scheduling-heavy Tables 3 and 4",
    )
    pr.add_argument(
        "--run", default=None, metavar="RUNDIR",
        help="render the telemetry of a finished --obs-dir run "
             "instead: manifest, per-lane timeline, metric and span "
             "summaries, best-cost-vs-time plot",
    )

    sub.add_parser("all", help="run every experiment (slow)")

    sub.add_parser("workloads", help="list registered workload presets")

    sub.add_parser(
        "strategies", help="list registered anytime search strategies"
    )

    po = sub.add_parser(
        "optimize",
        help="budgeted anytime metaheuristic search over the sharing "
             "space (scales to SOCs the exhaustive drivers cannot)",
    )
    po.add_argument(
        "--strategy", default="anneal",
        help="registered strategy name, or 'all' to race every one on "
             "a shared evaluation cache (default: anneal)",
    )
    po.add_argument(
        "--budget", type=int, default=200,
        help="evaluation budget per strategy — the *global* budget "
             "shared by all lanes in portfolio mode (default: 200)",
    )
    po.add_argument(
        "--seconds", type=float, default=None,
        help="wall-clock budget per strategy (default: none)",
    )
    po.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for portfolio mode (default: 1 = "
             "in-process); implies --portfolio",
    )
    po.add_argument(
        "--portfolio", type=int, default=0,
        help="race this many (strategy, seed) lanes under one shared "
             "incumbent and one global --budget (0 = off; --workers>1 "
             "implies max(workers, 4) lanes); lanes cycle the "
             "--strategy names with seeds --search-seed, +1, +2, ...",
    )
    po.add_argument("--width", type=int, default=32)
    po.add_argument(
        "--wt", type=float, default=0.5,
        help="test-time weight w_T (area weight is 1 - w_T)",
    )
    po.add_argument(
        "--search-seed", type=int, default=0,
        help="search RNG seed (same seed, same trace; default: 0)",
    )
    po.add_argument(
        "--trace", default="search_trace.jsonl",
        help="anytime-trace JSONL path ('' disables; default: "
             "search_trace.jsonl)",
    )
    po.add_argument(
        "--pack-effort", choices=("fast", "paper", "thorough"),
        default=None,
        help="packer throughput tier (fast: rules only; paper: the "
             "seed packer's 8 shuffles + 3 passes; thorough: 16 + 6); "
             "overrides the global --effort preset's pack knobs",
    )
    po.add_argument(
        "--power-budget", type=int, default=None,
        help="SOC instantaneous power ceiling (overrides the "
             "workload's own; see the *p power-annotated presets)",
    )
    po.add_argument(
        "--scenario", default=None, metavar="FILE",
        help="scenario document file (JSON/YAML/.soc; see 'repro "
             "scenario') to optimize instead of the --workload preset",
    )
    po.add_argument(
        "--smoke", action="store_true",
        help="fast CI path: the 'mini' workload at width 8, quick effort",
    )
    po.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="checkpoint file: resume from it when present and "
             "snapshot the run every --checkpoint-every steps, so a "
             "killed run replays to the uninterrupted trajectory "
             "(single strategy, or --portfolio with --workers 1)",
    )
    po.add_argument(
        "--checkpoint-every", type=int, default=25, metavar="N",
        help="steps between checkpoint snapshots (default: 25)",
    )
    # --seed after the subcommand, same SUPPRESS dance as generate
    po.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                    help="workload seed")

    pb = sub.add_parser(
        "profile",
        help="hot-path microbenchmark: evaluation and packing "
             "throughput of the schedule evaluator on one workload",
    )
    pb.add_argument("--width", type=int, default=32)
    pb.add_argument(
        "--evals", type=int, default=40,
        help="distinct sharing partitions to evaluate (default: 40)",
    )
    pb.add_argument(
        "--budget", type=int, default=0,
        help="additionally run a gated anneal search with this "
             "evaluation budget and report the gate skip rate",
    )
    pb.add_argument(
        "--workers", type=int, default=1,
        help="additionally run a portfolio scaling report: the same "
             "lane set at 1..N workers with wall-clock speedups "
             "(default: 1 = skip)",
    )
    pb.add_argument(
        "--baseline", action="store_true",
        help="also time the retained seed engine for a speedup ratio",
    )
    pb.add_argument(
        "--pack-effort", choices=("fast", "paper", "thorough"),
        default=None,
        help="packer throughput tier (see 'optimize --pack-effort')",
    )
    pb.add_argument(
        "--power-budget", type=int, default=None,
        help="SOC instantaneous power ceiling (overrides the "
             "workload's own)",
    )
    pb.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                    help="workload seed")

    pg = sub.add_parser(
        "generate", help="emit a scenario as an ITC'02-style .soc file"
    )
    pg.add_argument(
        "--preset", default=None,
        help="emit this registered workload; default: a fresh random "
             "mixed-signal SOC",
    )
    pg.add_argument(
        "--cores", type=int, default=24,
        help="digital core count of the random SOC (default: 24)",
    )
    pg.add_argument("--adc", type=int, default=2,
                    help="synthesized ADC cores (random SOC)")
    pg.add_argument("--dac", type=int, default=2,
                    help="synthesized DAC cores (random SOC)")
    pg.add_argument("--pll", type=int, default=1,
                    help="synthesized PLL cores (random SOC)")
    pg.add_argument(
        "--format", choices=("soc", "json", "yaml"), default="soc",
        help="output dialect: ITC'02 .soc text (default), or the "
             "canonical scenario document as JSON/YAML",
    )
    pg.add_argument(
        "--out", default="-",
        help="output path ('-' = stdout, the default)",
    )
    # --seed is also accepted *after* the subcommand; SUPPRESS keeps a
    # pre-subcommand global --seed intact when the local one is absent.
    pg.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                    help="generation seed")

    ps = sub.add_parser(
        "sweep", help="batch-evaluate a workload x width x weight grid"
    )
    ps.add_argument(
        "--preset", nargs="+", default=None,
        help="workload names (comma- or space-separated; default "
             "p93791m unless --scenario files are given)",
    )
    ps.add_argument(
        "--scenario", nargs="+", default=None, metavar="FILE",
        help="scenario document files (JSON/YAML/.soc) added to the "
             "grid as extra workload rows; a document is seedless — "
             "it already fixes its SOC",
    )
    ps.add_argument(
        "--widths", nargs="+", default=["16,24,32"],
        help="TAM widths (comma- or space-separated)",
    )
    ps.add_argument(
        "--wt", type=float, nargs="+", default=[0.5],
        help="test-time weights w_T to sweep (default: 0.5)",
    )
    ps.add_argument(
        "--delta", type=float, default=0.0,
        help="Cost_Optimizer elimination threshold",
    )
    ps.add_argument(
        "--exhaustive", action="store_true",
        help="evaluate every sharing combination per job",
    )
    ps.add_argument(
        "--strategy", nargs="+", default=None,
        help="anytime search strategy names to race as a grid axis "
             "('all' = every registered one); omitting keeps the "
             "paper flow",
    )
    ps.add_argument(
        "--budget", type=int, default=None,
        help="evaluation budget per search job (default: 200; "
             "requires --strategy)",
    )
    ps.add_argument(
        "--search-seed", type=int, default=None,
        help="search RNG seed for every search job (default: 0; "
             "requires --strategy)",
    )
    ps.add_argument(
        "--pack-effort", choices=("fast", "paper", "thorough"),
        default=None,
        help="packer throughput tier for every job, resolved onto the "
             "SweepJob shuffles/improvement-passes knobs (see "
             "'optimize --pack-effort')",
    )
    ps.add_argument(
        "--power-budget", nargs="+", default=None,
        help="SOC instantaneous power ceilings to sweep as a grid "
             "axis (comma- or space-separated; overrides each "
             "workload's own budget)",
    )
    ps.add_argument(
        "--trace-dir", default=None,
        help="directory collecting per-job anytime-trace JSONL files",
    )
    ps.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (default: 1 = inline, no pool spawn)",
    )
    ps.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="explicit multiprocessing start method for the worker "
             "pool (default: fork where available, else spawn)",
    )
    ps.add_argument(
        "--cache-dir", default=".repro_cache",
        help="on-disk result cache (default: .repro_cache)",
    )
    ps.add_argument(
        "--no-cache", action="store_true", help="disable the disk cache"
    )
    ps.add_argument(
        "--out", default="sweep_results.jsonl",
        help="JSONL stream path (default: sweep_results.jsonl)",
    )
    ps.add_argument(
        "--resume", default=None, metavar="PATH",
        help="skip jobs already completed in PATH — a previous --out "
             "JSONL file, or a directory containing "
             "sweep_results.jsonl; failed jobs re-run",
    )
    ps.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall timeout: a worker past it is killed and "
             "replaced, the job retried (default: none)",
    )
    ps.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="attempts beyond the first for a crashed/hung job before "
             "it is quarantined as an error (default: 2)",
    )
    ps.add_argument(
        "--smoke", action="store_true",
        help="fast CI path: the 'mini' workload at width 8, quick effort",
    )
    ps.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                    help="workload seed for every job")

    pw = sub.add_parser(
        "watch",
        help="live view of a telemetry run directory while it runs: "
             "best cost, evals/sec, gate-skip %%, per-lane heartbeat "
             "with dry/stall flags (tails the spools; no locks)",
    )
    pw.add_argument("run_dir", metavar="RUNDIR",
                    help="the run's --obs-dir directory")
    pw.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes (default: 2)",
    )
    pw.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (CI-friendly)",
    )
    pw.add_argument(
        "--json", action="store_true",
        help="with --once: emit a machine-readable snapshot instead",
    )

    pscn = sub.add_parser(
        "scenario",
        help="validate, convert, and inspect canonical scenario "
             "documents (the repro.schema data model)",
    )
    scn_sub = pscn.add_subparsers(dest="scenario_command", required=True)
    sv = scn_sub.add_parser(
        "validate",
        help="parse + validate documents, printing every line-anchored "
             "diagnostic; exit 1 if any file fails",
    )
    sv.add_argument("files", nargs="+", metavar="FILE",
                    help="scenario files (JSON/YAML/.soc)")
    sv.add_argument("--json", action="store_true")
    sc = scn_sub.add_parser(
        "convert",
        help="canonicalize/convert a document between json, yaml, and "
             "the ITC'02 .soc dialect",
    )
    sc.add_argument("file", metavar="FILE")
    sc.add_argument("--to", choices=("json", "yaml", "soc"),
                    default="json", help="output format (default: json)")
    sc.add_argument("--out", default="-",
                    help="output path ('-' = stdout, the default)")
    sshow = scn_sub.add_parser(
        "show",
        help="summarize a scenario document file, or a registry "
             "preset's shipped document",
    )
    sshow.add_argument("target", metavar="FILE_OR_PRESET")
    sshow.add_argument("--json", action="store_true")

    pserve = sub.add_parser(
        "serve",
        help="scheduler-as-a-service: asyncio HTTP API over a "
             "crash-durable job queue (submit/status/result/trace/"
             "healthz/drain); SIGTERM drains gracefully, SIGKILL is "
             "recovered by journal replay on the next start",
    )
    pserve.add_argument(
        "--dir", dest="server_dir", required=True, metavar="DIR",
        help="server state directory: journal, results, checkpoints, "
             "per-job run dirs (doubles as the telemetry run dir "
             "unless --obs-dir overrides)",
    )
    pserve.add_argument("--host", default="127.0.0.1")
    pserve.add_argument(
        "--port", type=int, default=8537,
        help="TCP port; 0 asks the OS for a free one — the resolved "
             "port lands in DIR/server.json (default: 8537)",
    )
    pserve.add_argument(
        "--depth", type=int, default=16,
        help="max queued+running jobs before submits get 429 "
             "(default: 16)",
    )
    pserve.add_argument(
        "--quota-rate", type=float, default=5.0, metavar="R",
        help="per-client token-bucket refill, submits/sec "
             "(default: 5)",
    )
    pserve.add_argument(
        "--quota-burst", type=float, default=10.0, metavar="B",
        help="per-client burst allowance (default: 10)",
    )
    pserve.add_argument(
        "--workers", type=int, default=1,
        help=">= 2 dispatches sweep jobs onto a supervised worker "
             "pool (crash isolation); 1 runs them in-process "
             "(default: 1)",
    )
    pserve.add_argument(
        "--start-method", choices=("fork", "spawn", "forkserver"),
        default=None, help="pool start method (with --workers >= 2)",
    )
    pserve.add_argument(
        "--cache-dir", default=None,
        help="disk cache shared by served jobs",
    )
    pserve.add_argument(
        "--timeout", dest="job_timeout", type=float, default=None,
        metavar="S", help="per-job wall timeout on the pool path",
    )
    pserve.add_argument(
        "--retries", type=int, default=2,
        help="supervised retries per pool job (default: 2)",
    )
    pserve.add_argument(
        "--request-timeout", type=float, default=30.0, metavar="S",
        help="per-HTTP-request deadline (default: 30)",
    )
    pserve.add_argument(
        "--checkpoint-every", type=int, default=25, metavar="N",
        help="steps between optimize-job checkpoint snapshots "
             "(default: 25)",
    )

    def _client_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--server-dir", default=None, metavar="DIR",
            help="server state directory — connects via its "
                 "server.json (alternative to --host/--port)",
        )
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=8537)
        p.add_argument(
            "--client-id", default="",
            help="quota identity (default: the peer address)",
        )
        p.add_argument(
            "--retry-seed", type=int, default=0,
            help="seed for the SDK's backoff jitter (default: 0)",
        )
        p.add_argument("--json", action="store_true")

    psubmit = sub.add_parser(
        "submit", help="submit a job to a running repro server",
    )
    _client_flags(psubmit)
    psubmit.add_argument(
        "--kind", choices=("sweep", "optimize"), default="sweep",
    )
    psubmit.add_argument(
        "--spec", default="{}", metavar="JSON",
        help="job parameters as a JSON object (sweep: SweepJob "
             "fields; optimize: workload/width/strategy/budget/...)",
    )
    psubmit.add_argument(
        "--scenario", default=None, metavar="FILE",
        help="scenario document file (JSON/YAML/.soc): submitted in "
             "the spec's 'scenario' field; the document's tam/"
             "optimizer blocks fill spec fields --spec leaves unset",
    )
    psubmit.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes and print its result",
    )
    psubmit.add_argument(
        "--deadline", type=float, default=300.0, metavar="S",
        help="with --wait: max seconds to poll (default: 300)",
    )

    pstatus = sub.add_parser(
        "status", help="query a served job's state",
    )
    _client_flags(pstatus)
    pstatus.add_argument("job_id")

    presult = sub.add_parser(
        "result", help="fetch a served job's result record",
    )
    _client_flags(presult)
    presult.add_argument("job_id")

    pruns = sub.add_parser(
        "runs",
        help="query the persistent run ledger (--obs-root or "
             "$REPRO_OBS_ROOT)",
    )
    # --obs-root is also accepted after 'runs'; SUPPRESS keeps the
    # global/env value intact when the local one is absent
    pruns.add_argument("--obs-root", metavar="DIR",
                       default=argparse.SUPPRESS,
                       help="ledger root (default: the global flag or "
                            "$REPRO_OBS_ROOT)")
    runs_sub = pruns.add_subparsers(dest="runs_command", required=True)

    rl = runs_sub.add_parser("list", help="index of recorded runs")
    rl.add_argument("--command", dest="filter_command", default=None,
                    help="only runs of this command (e.g. optimize, "
                         "bench:eval)")
    rl.add_argument("--workload", dest="filter_workload", default=None,
                    help="only runs of this workload")
    rl.add_argument("--last", type=int, default=None, metavar="N",
                    help="only the newest N matching runs")
    rl.add_argument("--json", action="store_true")

    rs = runs_sub.add_parser(
        "show", help="one recorded run in full",
    )
    rs.add_argument("ref", help="run-id prefix, or -1/-2/... from "
                                "the end")
    rs.add_argument("--json", action="store_true")

    rc = runs_sub.add_parser(
        "compare",
        help="metric deltas + trajectory comparison of two runs",
    )
    rc.add_argument("ref_a")
    rc.add_argument("ref_b")
    rc.add_argument("--json", action="store_true")

    rd = runs_sub.add_parser(
        "diff", help="parameter/environment diff of two runs",
    )
    rd.add_argument("ref_a")
    rd.add_argument("ref_b")
    rd.add_argument("--json", action="store_true")

    rr = runs_sub.add_parser(
        "regress",
        help="trend gate: compare a run against the ledger's last-N "
             "matched records (same configuration; throughput only on "
             "matching hardware); exit 1 on regression",
    )
    rr.add_argument("--run", default=None, metavar="REF",
                    help="candidate run (default: the newest record)")
    rr.add_argument("--last", type=int, default=5, metavar="N",
                    help="baseline window size (default: 5)")
    rr.add_argument("--cost-tolerance", type=float, default=0.02,
                    help="allowed best-cost regression vs the best "
                         "baseline (default: 0.02 = 2%%)")
    rr.add_argument("--throughput-tolerance", type=float, default=0.30,
                    help="allowed evals/sec drop vs the baseline "
                         "median (default: 0.30 = 30%%)")
    rr.add_argument("--json", action="store_true")

    rg = runs_sub.add_parser(
        "gc", help="prune ledger history (oldest first)",
    )
    rg.add_argument("--keep", type=int, required=True, metavar="N",
                    help="number of newest runs to keep")
    rg.add_argument("--json", action="store_true")

    rf = runs_sub.add_parser(
        "fold", help="fold an existing run directory into the ledger",
    )
    rf.add_argument("run_dir", metavar="RUNDIR")
    rf.add_argument("--json", action="store_true")
    return parser


def _load_scenario_doc(path: str):
    """Parse and validate one scenario file; any failure is a _CliError."""
    from . import schema

    try:
        doc = schema.parse_file(path)
    except OSError as exc:
        raise _CliError(f"cannot read {path!r}: {exc}") from None
    except schema.ScenarioError as exc:
        raise _CliError(exc.render()) from None
    problems = schema.validate(doc)
    if problems:
        raise _CliError("\n".join(d.render() for d in problems))
    return doc


def _run_scenario(args: argparse.Namespace) -> str:
    import json as _json

    from . import schema

    if args.scenario_command == "validate":
        reports = []
        failed = 0
        for path in args.files:
            try:
                doc = schema.parse_file(path)
                problems = list(schema.validate(doc))
            except OSError as exc:
                failed += 1
                reports.append({"file": path, "ok": False,
                                "problems": [str(exc)]})
                continue
            except schema.ScenarioError as exc:
                failed += 1
                reports.append({
                    "file": path, "ok": False,
                    "problems": [d.render() for d in exc.diagnostics],
                })
                continue
            if problems:
                failed += 1
            reports.append({
                "file": path, "ok": not problems,
                "problems": [d.render() for d in problems],
            })
        if args.json:
            text = _json.dumps(reports, indent=2)
        else:
            lines = []
            for report in reports:
                mark = "ok" if report["ok"] else "FAIL"
                lines.append(f"{mark:4s} {report['file']}")
                lines.extend(f"     {p}" for p in report["problems"])
            lines.append(
                f"{len(reports) - failed}/{len(reports)} files valid"
            )
            text = "\n".join(lines)
        if failed:
            raise _GateFailure(text)
        return text

    if args.scenario_command == "convert":
        from .soc import itc02

        doc = _load_scenario_doc(args.file)
        if args.to == "soc":
            dropped = [name for name, present in (
                ("tam", doc.tam is not None),
                ("optimizer", doc.optimizer is not None),
                ("extensions", bool(doc.extensions)),
            ) if present]
            if dropped:
                print(
                    f"note: the .soc dialect cannot carry "
                    f"{', '.join(dropped)}; dropped",
                    file=sys.stderr,
                )
            text = itc02.dumps_scenario(doc)
        else:
            if args.to == "yaml" and not schema.yaml_available():
                raise _CliError(
                    "--to yaml needs PyYAML (install the 'yaml' extra)"
                )
            text = schema.generate(doc, fmt=args.to)
        if args.out == "-":
            return text.rstrip("\n")
        from pathlib import Path

        Path(args.out).write_text(text)
        return f"wrote {args.out}"

    # show
    import os

    target = args.target
    if os.path.exists(target):
        doc = _load_scenario_doc(target)
    elif target in workloads.names():
        doc = workloads.scenario(target)
    else:
        raise _CliError(
            f"{target!r} is neither a file nor a workload preset "
            f"(presets: {', '.join(workloads.names())})"
        )
    soc = doc.build()
    if args.json:
        return _json.dumps(schema.to_canonical_dict(doc), indent=2)
    lines = [
        f"scenario {doc.name} (schema v{doc.schema_version})",
        soc.summary(),
    ]
    if doc.tam is not None:
        lines.append(f"tam: width {doc.tam.width}, w_T {doc.tam.wt:g}")
    if doc.optimizer is not None:
        opt = doc.optimizer
        lines.append(
            f"optimizer: {opt.strategy}, budget {opt.budget}, "
            f"search seed {opt.search_seed}, effort {opt.effort}"
        )
    if doc.extensions:
        lines.append(
            f"extensions: {len(doc.extensions)} preserved vendor key(s)"
        )
    return "\n".join(lines)


def _run_generate(args: argparse.Namespace) -> str:
    from . import schema
    from .soc import itc02

    if args.format == "yaml" and not schema.yaml_available():
        raise _CliError(
            "--format yaml needs PyYAML (install the 'yaml' extra)"
        )
    try:
        if args.preset is not None:
            doc = workloads.scenario(args.preset, args.seed)
        else:
            doc = workloads.random_scenario(
                n_cores=args.cores,
                seed=args.seed if args.seed is not None else 0,
                n_adc=args.adc,
                n_dac=args.dac,
                n_pll=args.pll,
            )
    except (KeyError, ValueError) as exc:
        raise _CliError(exc.args[0] if exc.args else exc) from None
    soc = doc.build()
    if args.format == "soc":
        text = itc02.dumps(soc)
    else:
        text = schema.generate(doc, fmt=args.format)
    if args.out == "-":
        return text.rstrip("\n")
    from pathlib import Path

    Path(args.out).write_text(text)
    return f"wrote {args.out}\n{soc.summary()}"


def _resolve_strategies(tokens: list[str] | None) -> tuple[str, ...]:
    """Map the --strategy argument to registered names ('' = paper flow)."""
    if tokens is None:
        return ("",)
    from .search import registry as search_registry

    names = _str_list(tokens)
    if "all" in names:
        return search_registry.strategy_names()
    for name in names:
        if name not in search_registry.strategy_names():
            raise _CliError(
                f"unknown strategy {name!r}; available: "
                f"{', '.join(search_registry.strategy_names())} (or 'all')"
            )
    return names


def _run_optimize(args: argparse.Namespace) -> str:
    from .core.area import AreaModel
    from .core.cost import CostModel, ScheduleEvaluator
    from .core.sharing import bell_number
    from .experiments.common import PACK_EFFORT
    from .reporting import write_jsonl
    from .search import Budget, SearchProblem, run_strategy
    from .search import registry as search_registry

    if args.smoke:
        if args.scenario is not None:
            raise _CliError("--scenario and --smoke are mutually exclusive")
        workload, width, effort = "mini", 8, "quick"
        budget = min(args.budget, 50)
    else:
        workload, width, effort = args.workload, args.width, args.effort
        budget = args.budget
    scenario_doc = None
    scenario_key = None
    if args.scenario is not None:
        import hashlib

        from . import schema

        scenario_doc = _load_scenario_doc(args.scenario)
        workload = scenario_doc.name
        scenario_key = hashlib.sha256(
            schema.generate(scenario_doc).encode("utf-8")
        ).hexdigest()[:16]
    if budget < 1:
        raise _CliError(f"--budget must be >= 1, got {budget}")
    if args.seconds is not None and args.seconds <= 0:
        raise _CliError(
            f"--seconds must be positive, got {args.seconds:g}"
        )
    names = _resolve_strategies([args.strategy])
    try:
        weights = CostWeights(time=args.wt, area=1.0 - args.wt)
        soc = (scenario_doc.build() if scenario_doc is not None
               else workloads.build(workload, args.seed))
        if args.power_budget is not None:
            soc = soc.with_power_budget(args.power_budget)
    except (KeyError, ValueError) as exc:
        raise _CliError(exc.args[0] if exc.args else exc) from None

    pack_kwargs = PACK_EFFORT[args.pack_effort or effort]
    if args.workers < 1:
        raise _CliError(f"--workers must be >= 1, got {args.workers}")
    if args.portfolio < 0:
        raise _CliError(
            f"--portfolio must be >= 0, got {args.portfolio}"
        )
    n_lanes = args.portfolio
    if n_lanes == 0 and args.workers > 1:
        n_lanes = max(args.workers, 4)
    checkpoint = None
    if args.checkpoint:
        from .search import SearchCheckpoint, run_fingerprint

        if args.checkpoint_every < 1:
            raise _CliError(
                f"--checkpoint-every must be >= 1, got "
                f"{args.checkpoint_every}"
            )
        if n_lanes and args.workers != 1:
            raise _CliError(
                "--checkpoint requires --workers 1 (only the "
                "deterministic in-process portfolio mode can replay a "
                "snapshot to the same trajectory)"
            )
        if not n_lanes and len(names) > 1:
            raise _CliError(
                "--checkpoint cannot race multiple strategies (the "
                "snapshot stores one run's trajectory); pick one, or "
                "use --portfolio with --workers 1"
            )
        fingerprint = run_fingerprint({
            "workload": workload, "width": width, "wt": args.wt,
            "budget": budget, "seconds": args.seconds,
            "strategies": list(names), "seed": args.seed,
            "search_seed": args.search_seed,
            "pack_effort": args.pack_effort or effort,
            "lanes": n_lanes,
            "power_budget": args.power_budget,
            "scenario": scenario_key,
        })
        checkpoint = SearchCheckpoint(
            args.checkpoint, every=args.checkpoint_every,
            fingerprint=fingerprint,
        )
    _obs_manifest("optimize", {
        "workload": workload, "width": width, "wt": args.wt,
        "budget": budget, "seconds": args.seconds,
        "strategies": list(names), "seed": args.seed,
        "search_seed": args.search_seed,
        "pack_effort": args.pack_effort or effort,
        "lanes": n_lanes, "workers": args.workers,
        "power_budget": args.power_budget,
        "scenario": scenario_key,
    }, engine="fast")
    if n_lanes:
        return _run_portfolio(
            args, workload, width, budget, names, soc, pack_kwargs,
            n_lanes, checkpoint=checkpoint,
        )
    # one shared evaluator: racing strategies reuse each other's packs
    evaluator = ScheduleEvaluator(soc, width, **pack_kwargs)
    model = CostModel(
        soc, width, weights, AreaModel(soc.analog_cores),
        evaluator=evaluator,
    )
    progress_every = 25

    def progress(count: int) -> None:
        if count % progress_every == 0:
            print(f"  ... {count} TAM packing runs", file=sys.stderr)

    evaluator.on_evaluation = progress

    space = bell_number(soc.n_analog)
    lines = [
        f"SOC {soc.name}: {soc.n_analog} analog cores, "
        f"{space} sharing partitions; TAM width {width}, "
        f"w_T={args.wt:g}, budget {budget} evaluations"
        + (f" / {args.seconds:g}s" if args.seconds else ""),
    ]
    outcomes = []
    for name in names:
        problem = SearchProblem(model, Budget(
            max_evaluations=budget, max_seconds=args.seconds,
        ))
        try:
            outcome = run_strategy(
                search_registry.create(name), problem,
                seed=args.search_seed, checkpoint=checkpoint,
            )
        except ValueError as exc:
            # e.g. a wall-clock budget that expired before the first
            # evaluation, or a checkpoint written by a different run
            # configuration — user input, not an internal failure
            raise _CliError(exc.args[0] if exc.args else exc) from None
        outcomes.append(outcome)
        lines.append(outcome.summary())
    best = min(outcomes, key=lambda o: (o.best_cost, o.best_partition))
    breakdown = model.breakdown(best.best_partition)
    lines += [
        "",
        f"best overall: {best.strategy} -> "
        f"{format_partition(best.best_partition)} "
        f"(cost {best.best_cost:.2f}, C_T {breakdown.time_cost:.1f}, "
        f"C_A {breakdown.area_cost:.1f}, makespan {breakdown.makespan})",
        f"{evaluator.evaluations} TAM packing runs total across "
        f"{len(outcomes)} strategies",
    ]
    evaluator.publish_obs()
    records = []
    for outcome in outcomes:
        records.extend(outcome.trace_records(
            workload=workload, width=width, wt=args.wt, budget=budget,
        ))
    if args.trace:
        try:
            write_jsonl(records, args.trace)
        except OSError as exc:
            raise _CliError(
                f"cannot write trace to {args.trace!r}: {exc}"
            ) from None
        lines.append(f"anytime trace ({len(records)} records) -> "
                     f"{args.trace}")
    # one synthetic "lane" per raced strategy, so report --run renders
    # the same table for inline and portfolio runs
    _obs_artifacts(trace_records=records, lane_records=[
        {
            "lane": i, "label": o.strategy, "strategy": o.strategy,
            "seed": o.seed, "n_evaluated": o.n_evaluated,
            "n_packs": o.n_packs, "n_gated": o.n_gated,
            "best_cost": (
                None if o.best_partition is None else o.best_cost
            ),
            "improvements": len(o.trace), "elapsed_s": o.elapsed_s,
            "stalled": o.stalled,
        }
        for i, o in enumerate(outcomes)
    ])
    return "\n".join(lines)


def _run_portfolio(
    args: argparse.Namespace,
    workload: str,
    width: int,
    budget: int,
    names: tuple[str, ...],
    soc,
    pack_kwargs: dict,
    n_lanes: int,
    checkpoint=None,
) -> str:
    """The ``optimize --portfolio/--workers`` parallel path."""
    from .core.sharing import bell_number
    from .reporting import write_jsonl
    from .search import (
        PortfolioInterrupted,
        default_lanes,
        portfolio_search,
    )

    lanes = default_lanes(n_lanes, names, base_seed=args.search_seed)
    space = bell_number(soc.n_analog)
    header = (
        f"SOC {soc.name}: {soc.n_analog} analog cores, "
        f"{space} sharing partitions; TAM width {width}, "
        f"w_T={args.wt:g}, global budget {budget} evaluations"
        + (f" / {args.seconds:g}s" if args.seconds else "")
        + f"; {len(lanes)} lanes on {args.workers} worker(s)"
    )
    try:
        outcome = portfolio_search(
            soc,
            width=width,
            lanes=lanes,
            workers=args.workers,
            budget=budget,
            max_seconds=args.seconds,
            wt=args.wt,
            checkpoint=checkpoint,
            **pack_kwargs,
        )
    except PortfolioInterrupted as exc:
        # surface whatever the in-process lanes had achieved, then let
        # main() report the interrupt (exit code 130)
        if exc.outcome is not None:
            records = exc.outcome.trace_records(
                workload=workload, width=width, wt=args.wt,
                budget=budget,
            )
            _obs_artifacts(
                trace_records=records,
                lane_records=exc.outcome.lane_records(),
            )
            print("\n".join([
                header, exc.outcome.summary(),
                "INTERRUPTED — partial portfolio results above",
            ]))
        raise
    except ValueError as exc:
        raise _CliError(exc.args[0] if exc.args else exc) from None
    lines = [header, outcome.summary()]
    records = outcome.trace_records(
        workload=workload, width=width, wt=args.wt, budget=budget,
    )
    if args.trace:
        try:
            write_jsonl(records, args.trace)
        except OSError as exc:
            raise _CliError(
                f"cannot write trace to {args.trace!r}: {exc}"
            ) from None
        lines.append(f"anytime trace ({len(records)} records) -> "
                     f"{args.trace}")
    _obs_artifacts(
        trace_records=records, lane_records=outcome.lane_records()
    )
    return "\n".join(lines)


def _run_profile(args: argparse.Namespace) -> str:
    """Hot-path microbenchmark of the schedule evaluator."""
    import time as _time

    from .core.area import AreaModel
    from .core.cost import CostModel, ScheduleEvaluator
    from .core.sharing import representative_partitions
    from .experiments.common import PACK_EFFORT
    from .search import Budget, SearchProblem, run_strategy
    from .search import registry as search_registry

    if args.evals < 1:
        raise _CliError(f"--evals must be >= 1, got {args.evals}")
    if args.workers < 1:
        raise _CliError(f"--workers must be >= 1, got {args.workers}")
    try:
        soc = workloads.build(args.workload, args.seed)
        if args.power_budget is not None:
            soc = soc.with_power_budget(args.power_budget)
    except (KeyError, ValueError) as exc:
        raise _CliError(exc.args[0] if exc.args else exc) from None
    if not soc.analog_cores:
        raise _CliError(f"workload {args.workload!r} has no analog cores")
    pack_kwargs = PACK_EFFORT[args.pack_effort or args.effort]
    partitions = representative_partitions(soc.analog_cores, args.evals)
    n = len(partitions)

    def throughput(engine: str) -> tuple[float, "ScheduleEvaluator"]:
        evaluator = ScheduleEvaluator(
            soc, args.width, engine=engine, **pack_kwargs
        )
        started = _time.perf_counter()
        for partition in partitions:
            evaluator.schedule(partition)
        return _time.perf_counter() - started, evaluator

    elapsed, evaluator = throughput("fast")
    lines = [
        f"SOC {soc.name}: {soc.n_digital} digital + {soc.n_analog} analog "
        f"cores; TAM width {args.width}, pack "
        f"{args.pack_effort or args.effort} "
        f"(shuffles={pack_kwargs['shuffles']}, "
        f"passes={pack_kwargs['improvement_passes']})",
        f"fast engine:  {n / elapsed:8.1f} evals/s "
        f"({evaluator.evaluations} packs in {elapsed:.3f}s)",
    ]
    evaluator.publish_obs()
    stats = evaluator.pack_stats
    if stats is not None and stats.orders_tried:
        placements = stats.prefix_placements + stats.fresh_placements
        lines.append(
            f"  order trials: {stats.orders_tried} started, "
            f"{stats.orders_pruned} pruned by the incumbent, "
            f"{stats.lb_stops} loops stopped at the lower bound; "
            f"{stats.prefix_placements}/{placements} placements "
            f"replayed from cached prefixes"
        )
    if args.baseline:
        ref_elapsed, _ = throughput("reference")
        lines.append(
            f"seed engine:  {n / ref_elapsed:8.1f} evals/s "
            f"({ref_elapsed:.3f}s) -> speedup {ref_elapsed / elapsed:.2f}x"
        )
    if args.budget:
        model = CostModel(
            soc, args.width, CostWeights.balanced(),
            AreaModel(soc.analog_cores),
            evaluator=ScheduleEvaluator(soc, args.width, **pack_kwargs),
        )
        problem = SearchProblem(
            model, Budget(max_evaluations=args.budget)
        )
        started = _time.perf_counter()
        outcome = run_strategy(
            search_registry.create("anneal"), problem, seed=0
        )
        search_elapsed = _time.perf_counter() - started
        model.evaluator.publish_obs()
        lines.append(
            f"gated anneal: {outcome.n_evaluated} evaluations "
            f"({outcome.n_packs} packs, {outcome.n_gated} gated = "
            f"{100.0 * outcome.n_gated / outcome.n_evaluated:.1f}% "
            f"skipped) in {search_elapsed:.3f}s -> best "
            f"{outcome.best_cost:.2f}"
        )
    if args.workers > 1:
        from .search import default_lanes, portfolio_search

        lanes = default_lanes(max(4, args.workers))
        scale_budget = args.budget or 400
        counts = [1]
        step = 2
        while step < args.workers:
            counts.append(step)
            step *= 2
        counts.append(args.workers)
        counts = sorted(set(counts))
        lines.append(
            f"portfolio scaling ({len(lanes)} lanes, global budget "
            f"{scale_budget}, wall-clock includes pool spawn and "
            f"worker warm-up):"
        )
        base_s = None
        for count in counts:
            try:
                portfolio = portfolio_search(
                    soc, width=args.width, lanes=lanes, workers=count,
                    budget=scale_budget, **pack_kwargs,
                )
            except ValueError as exc:
                # e.g. a --budget too small to feed every lane
                raise _CliError(exc.args[0] if exc.args else exc) \
                    from None
            if base_s is None:
                base_s = portfolio.elapsed_s
            lines.append(
                f"  {count} worker(s) [{portfolio.mode:6s}]: "
                f"{portfolio.n_evaluated} evals in "
                f"{portfolio.elapsed_s:.2f}s "
                f"({portfolio.n_evaluated / portfolio.elapsed_s:.1f}/s, "
                f"{base_s / portfolio.elapsed_s:.2f}x vs 1 worker, "
                f"best {portfolio.best_cost:.2f})"
            )
    return "\n".join(lines)


def _run_sweep(args: argparse.Namespace) -> str:
    from .runner import expand_grid, run_sweep

    scenario_texts: tuple[str, ...] = ()
    if args.scenario:
        from . import schema

        scenario_texts = tuple(
            schema.generate(_load_scenario_doc(path))
            for path in args.scenario
        )
    if args.smoke:
        presets: tuple[str, ...] = ("mini",)
        widths: tuple[int, ...] = (8,)
        effort = "quick"
    else:
        if args.preset is not None:
            presets = _str_list(args.preset)
        elif scenario_texts:
            presets = ()
        else:
            presets = ("p93791m",)
        widths = _int_list(args.widths)
        effort = args.effort
    strategies = _resolve_strategies(args.strategy)
    if strategies == ("",):
        for flag, value in (("--budget", args.budget),
                            ("--search-seed", args.search_seed)):
            if value is not None:
                raise _CliError(f"{flag} requires --strategy")
    pack_knobs = {}
    if args.pack_effort is not None:
        from .experiments.common import PACK_EFFORT

        # resolve the tier onto the explicit SweepJob pack knobs so the
        # cache key and JSONL records carry the actual configuration
        tier = PACK_EFFORT[args.pack_effort]
        pack_knobs = {
            "shuffles": tier["shuffles"],
            "improvement_passes": tier["improvement_passes"],
        }
    power_budgets: tuple[int | None, ...] = (None,)
    if args.power_budget is not None:
        power_budgets = _int_list(args.power_budget)
    try:
        jobs = expand_grid(
            presets,
            widths,
            scenarios=scenario_texts,
            wts=tuple(args.wt),
            seeds=(args.seed,),
            delta=args.delta,
            exhaustive=args.exhaustive,
            effort=effort,
            **pack_knobs,
            strategies=strategies,
            budget=args.budget if args.budget is not None else 200,
            search_seed=(
                args.search_seed if args.search_seed is not None else 0
            ),
            power_budgets=power_budgets,
        )
    except ValueError as exc:
        raise _CliError(exc.args[0] if exc.args else exc) from None
    cache_dir = None if args.no_cache else args.cache_dir

    if args.jobs < 1:
        raise _CliError(f"--jobs must be >= 1, got {args.jobs}")
    if args.timeout is not None and args.timeout <= 0:
        raise _CliError(
            f"--timeout must be positive, got {args.timeout:g}"
        )
    if args.retries < 0:
        raise _CliError(f"--retries must be >= 0, got {args.retries}")
    _obs_manifest("sweep", {
        "presets": list(presets),
        "scenarios": list(args.scenario or []),
        "widths": list(widths),
        "wts": list(args.wt), "seed": args.seed, "delta": args.delta,
        "exhaustive": args.exhaustive, "effort": effort,
        "strategies": list(strategies), "budget": args.budget,
        "search_seed": args.search_seed, "n_jobs": len(jobs),
        "workers": args.jobs, "cache_dir": cache_dir,
        "start_method": args.start_method,
        "timeout_s": args.timeout, "max_retries": args.retries,
        "resume": args.resume,
    }, engine="fast")

    def progress(result) -> None:
        state = "cache" if result.cache_hit else result.status
        label = f" {result.job.strategy}" if result.job.strategy else ""
        print(
            f"  [{state:5s}] {result.job.workload} W={result.job.width} "
            f"w_T={result.job.wt:g}{label} ({result.elapsed_s:.2f}s)",
            file=sys.stderr,
        )

    try:
        sweep = run_sweep(
            jobs,
            workers=args.jobs,
            cache_dir=cache_dir,
            out_path=args.out,
            progress=progress,
            trace_dir=args.trace_dir,
            start_method=args.start_method,
            timeout_s=args.timeout,
            max_retries=args.retries,
            resume_from=args.resume,
        )
    except ValueError as exc:
        # e.g. --resume pointing at nothing
        raise _CliError(exc.args[0] if exc.args else exc) from None
    except OSError as exc:
        raise _CliError(f"cannot write results to {args.out!r}: {exc}") \
            from None
    if sweep.interrupted:
        # partial results are on disk (resumable); main() turns this
        # into the interrupt exit code after folding telemetry
        print(sweep.render())
        raise KeyboardInterrupt
    if sweep.errors:
        # failed jobs are already itemized in the summary; make the
        # process exit code reflect them so CI pipelines notice
        print(sweep.render())
        raise SystemExit(1)
    return sweep.render()


def _run_watch(args: argparse.Namespace) -> str:
    """``repro watch RUNDIR``: live view of a run in flight."""
    import json as _json
    from pathlib import Path

    from .obs import LiveRunView, watch

    if not Path(args.run_dir).is_dir():
        raise _CliError(f"run directory not found: {args.run_dir!r}")
    if args.json:
        if not args.once:
            raise _CliError("watch --json requires --once")
        view = LiveRunView(args.run_dir)
        view.poll()
        return _json.dumps(view.to_dict(), indent=2, default=str)
    if args.interval <= 0:
        raise _CliError(
            f"--interval must be positive, got {args.interval:g}"
        )
    try:
        watch(args.run_dir, interval_s=args.interval, once=args.once)
    except KeyboardInterrupt:
        pass
    return ""


def _render_run_record(record: dict) -> str:
    """Human rendering of one full ledger record (``runs show``)."""
    from .reporting import ascii_plot, render_table

    summary = record.get("summary", {})
    run_id = (record.get("run_id") or "?")[:12]
    lines = [f"run {run_id}  (source: {record.get('source', '?')})"]
    for key in ("command", "status", "workload", "width", "engine",
                "budget", "workers", "best_cost", "n_evaluated",
                "n_gated", "gate_skip_rate", "n_jobs", "elapsed_s",
                "evals_per_s", "platform", "cpu_count",
                "package_version", "cache_version", "match_key"):
        value = summary.get(key)
        if value is not None:
            lines.append(f"  {key}: {value}")
    if record.get("path"):
        lines.append(f"  path: {record['path']}")
    blocks = ["\n".join(lines)]
    counters = record.get("metrics", {}).get("counters", {})
    if counters:
        blocks.append(render_table(
            ("counter", "value"),
            [[name, counters[name]] for name in sorted(counters)],
            title="metrics",
        ))
    lanes = record.get("lanes") or []
    if lanes:
        rows = [
            [
                lane.get("lane", "-"), lane.get("label", "-"),
                lane.get("n_evaluated", 0), lane.get("n_gated", 0),
                "-" if lane.get("best_cost") is None
                else f"{lane['best_cost']:.4f}",
            ]
            for lane in lanes if isinstance(lane, dict)
        ]
        blocks.append(render_table(
            ("lane", "label", "evals", "gated", "best cost"), rows,
            title="lanes",
        ))
    trace = record.get("trace") or []
    if len(trace) >= 2:
        blocks.append(ascii_plot(
            [p["t"] for p in trace], [p["cost"] for p in trace],
            title="best cost vs time (downsampled)",
            x_label="s", y_label="cost",
        ))
    return "\n\n".join(blocks)


def _render_compare(a: dict, b: dict, result: dict) -> str:
    from .reporting import render_table

    label_a = (a.get("run_id") or "?")[:12]
    label_b = (b.get("run_id") or "?")[:12]
    blocks = []
    rows = [
        [key, *("-" if v is None else v for v in values)]
        for key, values in result["summary"].items()
        if values[0] is not None or values[1] is not None
    ]
    if rows:
        blocks.append(render_table(
            ("metric", label_a, label_b, "delta"), rows,
            title="summary",
        ))
    changed = [
        [name, *values]
        for name, values in result["counters"].items()
        if values[2]
    ]
    if changed:
        blocks.append(render_table(
            ("counter", label_a, label_b, "delta"), changed,
            title="counter deltas",
        ))
    trajectory = [
        [fraction, *("-" if v is None else f"{v:.4f}" for v in pair)]
        for fraction, pair in result["trajectory"].items()
        if any(v is not None for v in pair)
    ]
    if trajectory:
        blocks.append(render_table(
            ("at % of run", label_a, label_b), trajectory,
            title="best cost trajectory (equal relative budget)",
        ))
    if not blocks:
        return "(no comparable data)"
    return "\n\n".join(blocks)


def _ledger(args: argparse.Namespace):
    from .obs import RunLedger

    root = getattr(args, "obs_root", None)
    if not root:
        raise _CliError(
            "the runs subcommands need a ledger root: pass "
            "--obs-root DIR or set REPRO_OBS_ROOT"
        )
    return RunLedger(root)


def _run_runs(args: argparse.Namespace) -> str:
    """The ``repro runs ...`` ledger query family."""
    import json as _json
    from pathlib import Path

    from .obs import check_regression, compare_records, diff_records
    from .reporting import render_table

    ledger = _ledger(args)
    action = args.runs_command
    try:
        if action == "list":
            entries = ledger.entries()
            if args.filter_command:
                entries = [e for e in entries
                           if e.get("command") == args.filter_command]
            if args.filter_workload:
                entries = [e for e in entries
                           if e.get("workload") == args.filter_workload]
            if args.last:
                entries = entries[-args.last:]
            if args.json:
                return _json.dumps(entries, indent=2, default=str)
            if not entries:
                return f"(no recorded runs under {ledger.root})"
            rows = [
                [
                    e["run_id"][:12],
                    time.strftime(
                        "%Y-%m-%d %H:%M:%S",
                        time.localtime(e.get("recorded_epoch", 0)),
                    ),
                    e.get("command", "?"),
                    e.get("workload") or "-",
                    "-" if e.get("best_cost") is None
                    else f"{e['best_cost']:.4f}",
                    "-" if e.get("evals_per_s") is None
                    else f"{e['evals_per_s']:g}",
                    "-" if e.get("elapsed_s") is None
                    else f"{e['elapsed_s']:g}",
                ]
                for e in entries
            ]
            return render_table(
                ("run", "recorded", "command", "workload",
                 "best cost", "evals/s", "wall s"),
                rows,
                title=f"ledger {ledger.root} ({len(entries)} runs)",
            )
        if action == "show":
            record = ledger.load(args.ref)
            if args.json:
                return _json.dumps(record, indent=2, default=str)
            return _render_run_record(record)
        if action == "compare":
            a = ledger.load(args.ref_a)
            b = ledger.load(args.ref_b)
            result = compare_records(a, b)
            if args.json:
                return _json.dumps(result, indent=2, default=str)
            return _render_compare(a, b, result)
        if action == "diff":
            a = ledger.load(args.ref_a)
            b = ledger.load(args.ref_b)
            result = diff_records(a, b)
            if args.json:
                return _json.dumps(result, indent=2, default=str)
            lines = []
            for section in ("params", "env"):
                for key, (va, vb) in result[section].items():
                    lines.append(f"{section}.{key}: {va!r} -> {vb!r}")
            return "\n".join(lines) if lines else "(no differences)"
        if action == "regress":
            report = check_regression(
                ledger, run=args.run, last=args.last,
                cost_tolerance=args.cost_tolerance,
                throughput_tolerance=args.throughput_tolerance,
            )
            text = (
                _json.dumps(report.to_dict(), indent=2, default=str)
                if args.json else report.render()
            )
            if not report.passed:
                raise _GateFailure(text)
            return text
        if action == "gc":
            summary = ledger.gc(args.keep)
            if args.json:
                return _json.dumps(summary)
            return (f"kept {summary['kept']} run(s), dropped "
                    f"{summary['dropped']}")
        if action == "fold":
            target = Path(args.run_dir)
            if not target.is_dir():
                raise _CliError(
                    f"run directory not found: {args.run_dir!r}"
                )
            if (target / "journal.jsonl").is_file():
                # a server state directory: fold the server run itself
                # plus every per-job run dir under jobs/, so served
                # work lines up with CLI runs in list/regress
                records = []
                if (target / "manifest.json").is_file():
                    records.append(ledger.fold_run(target))
                jobs_root = target / "jobs"
                if jobs_root.is_dir():
                    for job_dir in sorted(jobs_root.iterdir()):
                        if (job_dir / "manifest.json").is_file():
                            records.append(ledger.fold_run(job_dir))
                if not records:
                    raise _CliError(
                        f"server dir {args.run_dir!r} has no foldable "
                        f"run dirs yet"
                    )
                if args.json:
                    return _json.dumps(
                        {"run_ids": [r["run_id"] for r in records]},
                        default=str,
                    )
                return (f"recorded {len(records)} run(s) from server "
                        f"dir -> {ledger.root}")
            record = ledger.fold_run(args.run_dir)
            if args.json:
                return _json.dumps(
                    {"run_id": record["run_id"]}, default=str
                )
            return (f"recorded run {record['run_id'][:12]} -> "
                    f"{ledger.root}")
    except ValueError as exc:
        raise _CliError(exc.args[0] if exc.args else exc) from None
    except LookupError as exc:
        raise _CliError(exc.args[0] if exc.args else exc) from None
    raise ValueError(f"unknown runs action {action!r}")


def _run_serve(args: argparse.Namespace) -> str:
    """The ``repro serve`` long-lived server process."""
    import asyncio
    from pathlib import Path

    from . import obs
    from .server import ReproServer

    if obs.state() is None:
        # the server dir doubles as the telemetry run dir so watch,
        # report, and the ledger fold all work on it directly
        obs.configure(args.server_dir)
    pool = None
    if args.workers >= 2:
        from .runner.pool import WorkerPool

        pool = WorkerPool(args.workers, args.start_method)
    server = ReproServer(
        args.server_dir,
        host=args.host,
        port=args.port,
        depth=args.depth,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        request_timeout_s=args.request_timeout,
        pool=pool,
        cache_dir=args.cache_dir,
        job_timeout_s=args.job_timeout,
        max_retries=args.retries,
        checkpoint_every=args.checkpoint_every,
    )
    try:
        asyncio.run(server.run())
    finally:
        if pool is not None:
            pool.close()
        obs_root = getattr(args, "obs_root", None)
        if obs_root:
            # served jobs join the ledger alongside CLI runs
            from .obs import RunLedger

            ledger = RunLedger(obs_root)
            folded = 0
            jobs_root = Path(args.server_dir) / "jobs"
            if jobs_root.is_dir():
                for job_dir in sorted(jobs_root.iterdir()):
                    if not (job_dir / "manifest.json").is_file():
                        continue
                    try:
                        ledger.fold_run(job_dir)
                        folded += 1
                    except (OSError, ValueError):
                        continue
            if folded:
                print(f"[serve] folded {folded} job run dir(s) -> "
                      f"{obs_root}", file=sys.stderr)
    return "[serve] drained"


def _client(args: argparse.Namespace):
    from .client import ReproClient

    if args.server_dir:
        return ReproClient.from_server_dir(
            args.server_dir, client_id=args.client_id,
            seed=args.retry_seed,
        )
    return ReproClient(
        host=args.host, port=args.port, client_id=args.client_id,
        seed=args.retry_seed,
    )


def _run_submit(args: argparse.Namespace) -> str:
    import json as _json

    from .client import DeadlineExceeded, RequestFailed

    try:
        params = _json.loads(args.spec)
    except ValueError as exc:
        raise _CliError(f"--spec is not valid JSON: {exc}") from None
    if not isinstance(params, dict):
        raise _CliError("--spec must be a JSON object")
    if args.scenario is not None:
        from . import schema

        doc = _load_scenario_doc(args.scenario)
        params.setdefault("scenario", schema.generate(doc))
        # the document's tam/optimizer blocks are defaults: explicit
        # --spec fields win
        if doc.tam is not None:
            params.setdefault("width", doc.tam.width)
            params.setdefault("wt", doc.tam.wt)
        if args.kind == "optimize" and doc.optimizer is not None:
            opt = doc.optimizer
            params.setdefault("strategy", opt.strategy)
            params.setdefault("budget", opt.budget)
            params.setdefault("search_seed", opt.search_seed)
            params.setdefault("effort", opt.effort)
    client = _client(args)
    try:
        ticket = client.submit(args.kind, params)
        if not args.wait:
            payload = {
                "job_id": ticket.job_id, "state": ticket.state,
                "coalesced": ticket.coalesced,
            }
            if args.json:
                return _json.dumps(payload)
            return (f"job {ticket.job_id[:12]} {ticket.state}"
                    + (" (coalesced)" if ticket.coalesced else ""))
        record = client.wait_result(
            ticket.job_id, deadline_s=args.deadline,
            resubmit=(args.kind, params),
        )
    except (RequestFailed, DeadlineExceeded, OSError) as exc:
        raise _CliError(str(exc)) from None
    return _json.dumps(record, indent=2, sort_keys=True)


def _run_client_query(args: argparse.Namespace, verb: str) -> str:
    import json as _json

    from .client import RequestFailed

    client = _client(args)
    try:
        body = getattr(client, verb)(args.job_id)
    except (RequestFailed, OSError) as exc:
        raise _CliError(str(exc)) from None
    return _json.dumps(body, indent=2, sort_keys=True)


def _run_command(command: str, args: argparse.Namespace) -> str:
    if command == "scenario":
        return _run_scenario(args)
    if command == "watch":
        return _run_watch(args)
    if command == "runs":
        return _run_runs(args)
    if command == "serve":
        return _run_serve(args)
    if command == "submit":
        return _run_submit(args)
    if command == "status":
        return _run_client_query(args, "status")
    if command == "result":
        return _run_client_query(args, "result")
    if command == "workloads":
        lines = [
            f"{workload.name:10s} {workload.description}"
            for workload in (workloads.get(n) for n in workloads.names())
        ]
        return "\n".join(lines)
    if command == "strategies":
        from .search import registry as search_registry

        lines = [
            f"{spec.name:10s} {spec.description}"
            for spec in (
                search_registry.get(n)
                for n in search_registry.strategy_names()
            )
        ]
        return "\n".join(lines)
    if command == "report" and args.run:
        from . import obs

        try:
            return obs.render_report(args.run)
        except FileNotFoundError as exc:
            raise _CliError(str(exc)) from None
    if command == "generate":
        return _run_generate(args)
    if command == "optimize":
        return _run_optimize(args)
    if command == "profile":
        return _run_profile(args)
    if command == "sweep":
        return _run_sweep(args)
    try:
        context = ExperimentContext(
            effort=args.effort, workload=args.workload, seed=args.seed
        )
    except (KeyError, ValueError) as exc:
        raise _CliError(exc.args[0] if exc.args else exc) from None
    if command == "table1":
        return run_table1(context).render()
    if command == "table2":
        return run_table2(context).render()
    if command == "table3":
        return run_table3(context, widths=tuple(args.widths)).render()
    if command == "table4":
        return run_table4(
            context, widths=tuple(args.widths), delta=args.delta
        ).render()
    if command == "fig4":
        return run_fig4().render()
    if command == "fig5":
        return run_fig5().render(plots=not args.no_plots)
    if command == "report":
        from pathlib import Path

        from .experiments import generate_report

        text = generate_report(context, include_slow=not args.fast)
        Path(args.out).write_text(text)
        return f"wrote {args.out} ({len(text.splitlines())} lines)"
    if command == "plan":
        try:
            weights = CostWeights(time=args.wt, area=1.0 - args.wt)
            soc = context.soc
            if args.power_budget is not None:
                soc = soc.with_power_budget(args.power_budget)
        except ValueError as exc:
            raise _CliError(exc.args[0] if exc.args else exc) from None
        plan = plan_test(
            soc=soc,
            width=args.width,
            weights=weights,
            delta=args.delta,
            exhaustive=args.exhaustive,
            **context.pack_kwargs,
        )
        output = plan.summary()
        if args.gantt:
            output += "\n\n" + render_gantt(plan.schedule)
        return output
    raise ValueError(f"unknown command {command!r}")


#: Subcommands that inspect telemetry rather than produce it — the
#: ledger root must not spin up a run dir (or fold one) for these.
_QUERY_COMMANDS = frozenset(
    {"runs", "watch", "report", "workloads", "strategies", "generate",
     "submit", "status", "result", "scenario"}
)


def _mark_interrupted() -> None:
    """Stamp the active telemetry run directory as interrupted, so the
    ledger fold records ``status: interrupted`` instead of presenting a
    cut-short run as a completed one (no-op when telemetry is off)."""
    from . import obs

    state = obs.state()
    if state is None:
        return
    try:
        obs.write_status(state.run_dir, "interrupted")
    except OSError:  # pragma: no cover - best effort on teardown
        pass


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    import signal

    parser = build_parser()
    args = parser.parse_args(argv)
    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    try:
        # graceful SIGTERM (timeouts, orchestrators): unwind like
        # Ctrl-C so pools terminate, partial results land on disk, and
        # the telemetry record folds as interrupted
        signal.signal(signal.SIGTERM, _sigterm)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    started = time.time()
    obs_root = getattr(args, "obs_root", None)
    produces_run = args.command not in _QUERY_COMMANDS
    obs_dir = args.obs_dir
    if not obs_dir and obs_root and produces_run:
        # --obs-root alone still wants the run recorded: give it an
        # auto-named run dir under the ledger root ('runs gc' prunes
        # these along with their ledger entries)
        obs_dir = os.path.join(
            obs_root, "rundirs",
            f"{args.command}-{time.strftime('%Y%m%d-%H%M%S')}"
            f"-{os.getpid()}",
        )
    if obs_dir:
        from . import obs

        try:
            obs.configure(obs_dir)
        except OSError as exc:
            print(f"error: cannot create obs dir {obs_dir!r}: "
                  f"{exc}", file=sys.stderr)
            return 2
    try:
        if args.command == "all":
            for command in ("table1", "table2", "fig4", "fig5", "table3",
                            "table4"):
                argv_prefix = ["--effort", args.effort,
                               "--workload", args.workload]
                if args.seed is not None:
                    argv_prefix += ["--seed", str(args.seed)]
                sub_args = parser.parse_args(argv_prefix + [command])
                print(_run_command(command, sub_args))
                print()
        else:
            print(_run_command(args.command, args))
    except _CliError as exc:
        # bad user input (unknown workload, invalid width, ...) gets a
        # one-line diagnostic instead of a traceback
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except _GateFailure as exc:
        # a failed check (runs regress): report + failure exit code
        print(exc.args[0])
        return 1
    except KeyboardInterrupt:
        # SIGINT/SIGTERM: pools are already torn down and partial
        # results printed by the command handlers; mark the telemetry
        # record so the ledger shows the run as interrupted
        _mark_interrupted()
        print("interrupted", file=sys.stderr)
        return 130
    finally:
        # even a failed run leaves an aggregable telemetry record
        _finalize_obs(obs_root if produces_run else None)
    elapsed = time.time() - started
    if elapsed > 5:
        print(f"\n[{elapsed:.0f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
