"""Ablation studies on the design choices DESIGN.md calls out.

Not paper tables — these probe the knobs the paper fixes:

* :func:`beta_sweep` — the routing proximity factor β (the paper uses
  the representative value 0.5): how the area cost of sharing, and thus
  the chosen combination, moves as routing gets more expensive;
* :func:`delta_sweep` — the ``Cost_Optimizer`` elimination threshold δ
  (the paper uses 0): evaluations-vs-optimality trade-off;
* :func:`scalability_sweep` — evaluation counts as the number of analog
  cores grows (the paper's motivation for pruning: combinations grow
  exponentially);
* :func:`packer_gap` — the greedy packer's makespan gap against the
  exact branch-and-bound on small random instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.area import AreaModel
from ..core.cost import CostModel, CostWeights, ScheduleEvaluator
from ..core.exhaustive import exhaustive_search
from ..core.optimizer import cost_optimizer
from ..core.sharing import (
    Partition,
    format_partition,
    identical_core_classes,
    paper_combinations,
    symmetry_reduce,
)
from ..soc.model import AnalogCore, AnalogTest
from ..tam.branch_bound import optimal_makespan
from ..tam.model import TamTask, WidthOption
from ..tam.packing import pack
from .common import ExperimentContext

__all__ = [
    "BetaPoint",
    "beta_sweep",
    "DeltaPoint",
    "delta_sweep",
    "ScalabilityPoint",
    "scalability_sweep",
    "PackerGapPoint",
    "packer_gap",
    "SelfTestPoint",
    "self_test_sweep",
    "PlacementComparison",
    "placement_comparison",
]


@dataclass(frozen=True)
class BetaPoint:
    """Chosen combination and its costs at one routing factor."""

    beta: float
    best_partition: Partition
    best_cost: float
    area_cost: float

    def label(self) -> str:
        """Readable partition label."""
        return format_partition(self.best_partition)


def beta_sweep(
    context: ExperimentContext | None = None,
    betas: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 1.0),
    width: int = 48,
    weights: CostWeights | None = None,
) -> list[BetaPoint]:
    """Optimal sharing combination as routing overhead grows.

    Higher β makes every shared wrapper relatively more expensive, so
    the optimum should drift toward *less* sharing.
    """
    context = context or ExperimentContext()
    weights = weights or CostWeights.area_heavy()
    combos = context.combinations
    evaluator = ScheduleEvaluator(context.soc, width, **context.pack_kwargs)
    points = []
    for beta in betas:
        model = CostModel(
            context.soc,
            width,
            weights,
            AreaModel(context.cores, beta=beta),
            evaluator=evaluator,
        )
        result = exhaustive_search(model, combos)
        points.append(
            BetaPoint(
                beta=beta,
                best_partition=result.best_partition,
                best_cost=result.best_cost,
                area_cost=model.area_cost(result.best_partition),
            )
        )
    return points


@dataclass(frozen=True)
class DeltaPoint:
    """Heuristic outcome at one elimination threshold."""

    delta: float
    n_evaluated: int
    best_cost: float
    matches_exhaustive: bool


def delta_sweep(
    context: ExperimentContext | None = None,
    deltas: tuple[float, ...] = (0.0, 2.0, 5.0, 10.0, 100.0),
    width: int = 48,
    weights: CostWeights | None = None,
) -> list[DeltaPoint]:
    """Evaluations vs optimality as the pruning threshold relaxes.

    δ = 0 prunes hardest; a huge δ keeps every group (the heuristic
    degenerates to exhaustive and must match it).
    """
    context = context or ExperimentContext()
    weights = weights or CostWeights.balanced()
    combos = context.combinations
    area_model = context.area_model()
    reference_model = CostModel(
        context.soc,
        width,
        weights,
        area_model,
        evaluator=ScheduleEvaluator(context.soc, width, **context.pack_kwargs),
    )
    reference = exhaustive_search(reference_model, combos)
    points = []
    for delta in deltas:
        model = CostModel(
            context.soc,
            width,
            weights,
            area_model,
            evaluator=ScheduleEvaluator(
                context.soc, width, **context.pack_kwargs
            ),
        )
        result = cost_optimizer(model, combos, delta=delta)
        points.append(
            DeltaPoint(
                delta=delta,
                n_evaluated=result.n_evaluated,
                best_cost=result.best_cost,
                matches_exhaustive=(
                    result.best_partition == reference.best_partition
                ),
            )
        )
    return points


@dataclass(frozen=True)
class ScalabilityPoint:
    """Combination counts at one analog-core count."""

    n_cores: int
    n_combinations: int
    heuristic_evaluations: int


def _synthetic_analog_core(name: str, rng: random.Random) -> AnalogCore:
    tests = tuple(
        AnalogTest(
            name=f"t{i}",
            band_low_hz=1e3 * rng.randint(1, 50),
            band_high_hz=1e3 * rng.randint(50, 100),
            sample_freq_hz=1e6 * rng.randint(1, 20),
            cycles=rng.randint(2_000, 120_000),
            tam_width=rng.randint(1, 6),
        )
        for i in range(rng.randint(2, 4))
    )
    return AnalogCore(
        name=name,
        description="synthetic analog core",
        tests=tests,
        resolution_bits=rng.choice([6, 8, 10]),
    )


def scalability_sweep(
    context: ExperimentContext | None = None,
    core_counts: tuple[int, ...] = (3, 4, 5, 6, 7),
    width: int = 32,
    seed: int = 7,
) -> list[ScalabilityPoint]:
    """Growth of the combination space and the heuristic's evaluations.

    Cores beyond the benchmark's five are synthesized (seeded).  The
    point of the paper's heuristic is that ``n`` grows far slower than
    ``N_tot``.
    """
    context = context or ExperimentContext()
    rng = random.Random(seed)
    base = list(context.cores)
    while len(base) < max(core_counts):
        base.append(_synthetic_analog_core(f"S{len(base)}", rng))
    points = []
    for count in core_counts:
        cores = tuple(base[:count])
        soc = context.soc.with_analog_cores(cores)
        names = [c.name for c in cores]
        combos = symmetry_reduce(
            paper_combinations(names), identical_core_classes(cores)
        )
        model = CostModel(
            soc,
            width,
            CostWeights.balanced(),
            AreaModel(cores),
            evaluator=ScheduleEvaluator(soc, width, **context.pack_kwargs),
        )
        result = cost_optimizer(model, combos, delta=0.0)
        points.append(
            ScalabilityPoint(
                n_cores=count,
                n_combinations=len(combos),
                heuristic_evaluations=result.n_evaluated,
            )
        )
    return points


@dataclass(frozen=True)
class PackerGapPoint:
    """Greedy vs exact makespan on one random instance."""

    instance: int
    greedy_makespan: int
    optimal_makespan: int

    @property
    def gap_percent(self) -> float:
        """Greedy excess over the optimum."""
        return (
            100.0
            * (self.greedy_makespan - self.optimal_makespan)
            / self.optimal_makespan
        )


@dataclass(frozen=True)
class SelfTestPoint:
    """Planning outcome with and without converter-BIST accounting."""

    include_self_test: bool
    best_partition: Partition
    best_cost: float
    n_wrappers: int

    def label(self) -> str:
        """Readable partition label."""
        return format_partition(self.best_partition)


def self_test_sweep(
    context: ExperimentContext | None = None,
    width: int = 48,
    weights: CostWeights | None = None,
) -> tuple[SelfTestPoint, SelfTestPoint]:
    """The paper's future-work extension: price the wrapper BIST.

    Sharing wrappers means fewer converter pairs to screen — one BIST
    per wrapper instead of one per core — which *counteracts* the
    serialization penalty of sharing.  Returns (without, with) points.
    """
    context = context or ExperimentContext()
    weights = weights or CostWeights.balanced()
    combos = context.combinations
    area_model = context.area_model()
    points = []
    for include in (False, True):
        model = CostModel(
            context.soc,
            width,
            weights,
            area_model,
            evaluator=ScheduleEvaluator(
                context.soc,
                width,
                include_self_test=include,
                **context.pack_kwargs,
            ),
        )
        result = exhaustive_search(model, combos)
        points.append(
            SelfTestPoint(
                include_self_test=include,
                best_partition=result.best_partition,
                best_cost=result.best_cost,
                n_wrappers=len(result.best_partition),
            )
        )
    return points[0], points[1]


@dataclass(frozen=True)
class PlacementComparison:
    """Global-beta vs placement-aware routing model outcomes."""

    global_partition: Partition
    global_cost: float
    placed_partition: Partition
    placed_cost: float
    near_group_beta: float
    far_group_beta: float


def placement_comparison(
    width: int = 48,
    weights: CostWeights | None = None,
    effort: str = "medium",
) -> PlacementComparison:
    """The paper's future-work extension: placement-aware routing cost.

    With floorplan positions, each candidate wrapper group gets its own
    routing factor from the cores' cumulative distance instead of the
    global representative ``beta = 0.5`` — distant groupings (e.g. the
    transmit pair with the RF-side amplifier) become less attractive.
    """
    from ..soc.analog_specs import paper_analog_cores
    from ..soc.benchmarks import p93791m

    weights = weights or CostWeights.area_heavy()
    soc = p93791m(with_positions=True)
    context = ExperimentContext(soc=soc, effort=effort)
    combos = context.combinations
    evaluator = ScheduleEvaluator(soc, width, **context.pack_kwargs)

    global_model = CostModel(
        soc, width, weights,
        AreaModel(soc.analog_cores, use_positions=False),
        evaluator=evaluator,
    )
    placed_model = CostModel(
        soc, width, weights,
        AreaModel(soc.analog_cores, use_positions=True),
        evaluator=evaluator,
    )
    global_result = exhaustive_search(global_model, combos)
    placed_result = exhaustive_search(placed_model, combos)
    placed_area = placed_model.area_model
    return PlacementComparison(
        global_partition=global_result.best_partition,
        global_cost=global_result.best_cost,
        placed_partition=placed_result.best_partition,
        placed_cost=placed_result.best_cost,
        near_group_beta=placed_area.group_beta(("A", "B")),
        far_group_beta=placed_area.group_beta(("A", "D")),
    )


def packer_gap(
    n_instances: int = 10,
    n_tasks: int = 6,
    width: int = 12,
    seed: int = 3,
) -> list[PackerGapPoint]:
    """Measure the greedy packer against branch-and-bound ground truth."""
    rng = random.Random(seed)
    points = []
    for instance in range(n_instances):
        tasks = []
        for t in range(n_tasks):
            w1 = rng.randint(1, width // 2)
            t1 = rng.randint(20, 200)
            options = [WidthOption(w1, t1)]
            if rng.random() < 0.6 and w1 + 1 <= width:
                options.append(
                    WidthOption(min(width, w1 * 2), max(1, t1 // 2))
                )
            group = f"g{t % 2}" if rng.random() < 0.3 else None
            tasks.append(
                TamTask(name=f"t{t}", options=tuple(options), group=group)
            )
        greedy = pack(tasks, width).makespan
        exact = optimal_makespan(tasks, width)
        points.append(
            PackerGapPoint(
                instance=instance,
                greedy_makespan=greedy,
                optimal_makespan=exact,
            )
        )
    return points
