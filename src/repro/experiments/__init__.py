"""Per-table / per-figure experiment drivers (see DESIGN.md index)."""

from .ablations import (
    BetaPoint,
    DeltaPoint,
    PackerGapPoint,
    PlacementComparison,
    ScalabilityPoint,
    SelfTestPoint,
    beta_sweep,
    delta_sweep,
    packer_gap,
    placement_comparison,
    scalability_sweep,
    self_test_sweep,
)
from .common import PACK_EFFORT, ExperimentContext
from .fig4 import Fig4Result, run_fig4
from .report import generate_report
from .fig5 import FIG5_DEFAULTS, Fig5Result, run_fig5
from .table1 import Table1Result, Table1Row, run_table1
from .table2 import Table2Result, Table2Row, run_table2
from .table3 import DEFAULT_WIDTHS, Table3Result, run_table3
from .table4 import (
    DEFAULT_TABLE4_WIDTHS,
    Table4Cell,
    Table4Result,
    run_table4,
)

__all__ = [
    "BetaPoint",
    "DEFAULT_TABLE4_WIDTHS",
    "DEFAULT_WIDTHS",
    "DeltaPoint",
    "PlacementComparison",
    "SelfTestPoint",
    "placement_comparison",
    "self_test_sweep",
    "ExperimentContext",
    "FIG5_DEFAULTS",
    "Fig4Result",
    "Fig5Result",
    "PACK_EFFORT",
    "PackerGapPoint",
    "ScalabilityPoint",
    "Table1Result",
    "Table1Row",
    "Table2Result",
    "Table2Row",
    "Table3Result",
    "Table4Cell",
    "Table4Result",
    "beta_sweep",
    "delta_sweep",
    "packer_gap",
    "run_fig4",
    "run_fig5",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "scalability_sweep",
    "generate_report",
]
