"""Shared setup for the paper's experiments.

Every experiment operates on the same artifacts: the mixed-signal SOC
``p93791m``, the 26 sharing combinations of Table 1, and the Eq. (1)
area model.  :class:`ExperimentContext` bundles them with an *effort*
preset controlling how hard the rectangle packer works (benches use
``full``; unit tests use ``quick`` to stay fast).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.area import AreaModel
from ..core.sharing import (
    Partition,
    identical_core_classes,
    paper_combinations,
    symmetry_reduce,
)
from ..soc.benchmarks import p93791m
from ..soc.model import Soc

__all__ = ["ExperimentContext", "PACK_EFFORT"]

#: Packer effort presets: kwargs forwarded to :func:`repro.tam.packing.pack`.
PACK_EFFORT = {
    "full": {"shuffles": 8, "improvement_passes": 3},
    "medium": {"shuffles": 4, "improvement_passes": 2},
    "quick": {"shuffles": 0, "improvement_passes": 1},
}


@dataclass
class ExperimentContext:
    """The benchmark SOC plus derived artifacts used by all experiments.

    :param soc: the mixed-signal SOC (defaults to ``p93791m``).
    :param effort: packer effort preset name (see :data:`PACK_EFFORT`).
    """

    soc: Soc = field(default_factory=p93791m)
    effort: str = "full"

    def __post_init__(self) -> None:
        if self.effort not in PACK_EFFORT:
            raise ValueError(
                f"unknown effort {self.effort!r}, pick from "
                f"{sorted(PACK_EFFORT)}"
            )
        if not self.soc.analog_cores:
            raise ValueError("experiments need a mixed-signal SOC")

    @property
    def pack_kwargs(self) -> dict:
        """Packer keyword arguments for this effort preset."""
        return dict(PACK_EFFORT[self.effort])

    @property
    def cores(self):
        """The SOC's analog cores."""
        return self.soc.analog_cores

    @property
    def core_names(self) -> tuple[str, ...]:
        """Names of the analog cores, Table 2 order."""
        return tuple(core.name for core in self.cores)

    @property
    def combinations(self) -> list[Partition]:
        """The Table 1 sharing combinations (symmetry reduced; 26 for
        the paper's benchmark)."""
        return symmetry_reduce(
            paper_combinations(self.core_names),
            identical_core_classes(self.cores),
        )

    def area_model(self, **kwargs) -> AreaModel:
        """The Eq. (1) area model over the SOC's analog cores."""
        return AreaModel(self.cores, **kwargs)
