"""Shared setup for the paper's experiments.

Every experiment operates on the same artifacts: a mixed-signal SOC, its
sharing combinations (Table 1 style), and the Eq. (1) area model.
:class:`ExperimentContext` bundles them with an *effort* preset
controlling how hard the rectangle packer works (benches use ``full``;
unit tests use ``quick`` to stay fast).

The SOC comes from the workload registry (:mod:`repro.workloads`), so
every table/figure driver runs against any named scenario — the paper's
``p93791m`` is merely the default::

    run_table1(ExperimentContext(workload="d695m", effort="quick"))
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.area import AreaModel
from ..core.sharing import (
    Partition,
    identical_core_classes,
    paper_combinations,
    symmetry_reduce,
)
from ..soc.model import Soc
from ..workloads import build as build_workload

__all__ = ["ExperimentContext", "PACK_EFFORT"]

#: Packer effort presets: kwargs forwarded to :func:`repro.tam.packing.pack`.
#: ``full``/``medium``/``quick`` are the experiment-driver tiers;
#: ``fast``/``paper``/``thorough`` are the sweep/optimize ``--pack-effort``
#: tiers trading schedule quality for evaluation throughput (``paper``
#: is the seed packer's own configuration).
PACK_EFFORT = {
    "full": {"shuffles": 8, "improvement_passes": 3},
    "medium": {"shuffles": 4, "improvement_passes": 2},
    "quick": {"shuffles": 0, "improvement_passes": 1},
    "fast": {"shuffles": 0, "improvement_passes": 0},
    "thorough": {"shuffles": 16, "improvement_passes": 6},
}
# 'paper' is the seed packer's own configuration, which is exactly
# 'full' — one shared dict so the two can never drift apart
PACK_EFFORT["paper"] = PACK_EFFORT["full"]


@dataclass
class ExperimentContext:
    """The benchmark SOC plus derived artifacts used by all experiments.

    :param soc: the mixed-signal SOC; when ``None``, built from the
        workload registry using *workload* and *seed*.
    :param effort: packer effort preset name (see :data:`PACK_EFFORT`).
    :param workload: registry preset name (default: the paper's
        benchmark ``p93791m``).  Ignored when *soc* is given.
    :param seed: workload seed (``None`` = the preset's default).
    """

    soc: Soc | None = None
    effort: str = "full"
    workload: str = "p93791m"
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.effort not in PACK_EFFORT:
            raise ValueError(
                f"unknown effort {self.effort!r}, pick from "
                f"{sorted(PACK_EFFORT)}"
            )
        if self.soc is None:
            self.soc = build_workload(self.workload, self.seed)
        if not self.soc.analog_cores:
            raise ValueError("experiments need a mixed-signal SOC")

    @property
    def pack_kwargs(self) -> dict:
        """Packer keyword arguments for this effort preset."""
        return dict(PACK_EFFORT[self.effort])

    @property
    def cores(self):
        """The SOC's analog cores."""
        return self.soc.analog_cores

    @property
    def core_names(self) -> tuple[str, ...]:
        """Names of the analog cores, Table 2 order."""
        return tuple(core.name for core in self.cores)

    @property
    def combinations(self) -> list[Partition]:
        """The Table 1 sharing combinations (symmetry reduced; 26 for
        the paper's benchmark)."""
        return symmetry_reduce(
            paper_combinations(self.core_names),
            identical_core_classes(self.cores),
        )

    def area_model(self, **kwargs) -> AreaModel:
        """The Eq. (1) area model over the SOC's analog cores."""
        return AreaModel(self.cores, **kwargs)
