"""Table 2 — analog core test requirements, with feasibility audit.

Table 2 is *input* data (embedded verbatim in
:mod:`repro.soc.analog_specs`); this experiment renders it and audits
every test against the wrapper bandwidth rule at the paper's 50 MHz TAM
clock — demonstrating that each test's TAM width in Table 2 is exactly
enough to stream its samples (``bits x f_s <= width x f_TAM``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analog_wrapper.wrapper import DEFAULT_TAM_CLOCK_HZ, TestConfiguration
from ..reporting.tables import render_table
from ..soc.model import AnalogCore, AnalogTest
from .common import ExperimentContext

__all__ = ["Table2Row", "Table2Result", "run_table2"]


def _hz(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:g}MHz"
    if value >= 1e3:
        return f"{value / 1e3:g}kHz"
    return f"{value:g}Hz"


@dataclass(frozen=True)
class Table2Row:
    """One analog test's requirements and wrapper configuration."""

    core: AnalogCore
    test: AnalogTest
    configuration: TestConfiguration
    feasible: bool


@dataclass(frozen=True)
class Table2Result:
    """All Table 2 rows plus totals."""

    rows: tuple[Table2Row, ...]
    tam_clock_hz: float

    @property
    def all_feasible(self) -> bool:
        """Whether every test fits its Table 2 TAM width."""
        return all(row.feasible for row in self.rows)

    def core_total_cycles(self, name: str) -> int:
        """Total test time of one core (sums its rows)."""
        return sum(
            row.test.cycles for row in self.rows if row.core.name == name
        )

    def render(self) -> str:
        """Paper-style text table with the feasibility audit column."""
        body = []
        for row in self.rows:
            body.append(
                (
                    row.core.name,
                    row.test.name,
                    _hz(row.test.band_low_hz) if row.test.band_low_hz else "DC",
                    _hz(row.test.band_high_hz)
                    if row.test.band_high_hz
                    else "DC",
                    _hz(row.test.sample_freq_hz),
                    row.test.cycles,
                    row.test.tam_width,
                    round(row.configuration.bits_per_tam_cycle, 2),
                    row.feasible,
                )
            )
        return render_table(
            headers=(
                "core",
                "test",
                "f_lo",
                "f_hi",
                "f_s",
                "cycles",
                "width",
                "bits/cycle",
                "fits",
            ),
            rows=body,
            title=(
                "Table 2: analog test requirements "
                f"(TAM clock {_hz(self.tam_clock_hz)})"
            ),
        )


def run_table2(
    context: ExperimentContext | None = None,
    tam_clock_hz: float = DEFAULT_TAM_CLOCK_HZ,
) -> Table2Result:
    """Render and audit Table 2 for the benchmark's analog cores."""
    context = context or ExperimentContext()
    rows = []
    for core in context.cores:
        for test in core.tests:
            configuration = TestConfiguration(
                test=test,
                resolution_bits=core.test_resolution(test),
                tam_clock_hz=tam_clock_hz,
            )
            rows.append(
                Table2Row(
                    core=core,
                    test=test,
                    configuration=configuration,
                    feasible=configuration.is_feasible,
                )
            )
    return Table2Result(rows=tuple(rows), tam_clock_hz=tam_clock_hz)
