"""Table 1 — area overhead costs and analog test-time lower bounds.

For every sharing combination: the Eq. (1) area cost :math:`C_A` (both
the joint-requirement and the literal max-of-areas readings), the
alternative savings normalization, and the normalized analog test-time
lower bound :math:`\\hat T_{LB}`.

The :math:`\\hat T_{LB}` column reproduces the paper's **exactly**
(Table 2 is fully published; the paper truncates to one decimal).  The
area columns use the calibrated area model (DESIGN.md substitution) —
the paper's per-core area constants are unpublished — and preserve the
paper's structure: no sharing is the maximum (100), deeper sharing is
cheaper, and speed/resolution-conflicting groups exceed 100 ("should
not be considered").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.area import AreaModel
from ..core.lower_bounds import normalized_lower_bound
from ..core.sharing import Partition, format_partition, n_wrappers
from ..reporting.tables import render_table
from .common import ExperimentContext

__all__ = ["Table1Row", "Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One sharing combination's Table 1 entry."""

    partition: Partition
    wrappers: int
    area_cost_joint: float
    area_cost_max_basis: float
    savings_cost: float
    t_lb_hat: float


@dataclass(frozen=True)
class Table1Result:
    """All Table 1 rows plus the rendering helper."""

    rows: tuple[Table1Row, ...]

    def render(self) -> str:
        """Paper-style text table."""
        return render_table(
            headers=(
                "N_w",
                "combination",
                "C_A (joint)",
                "C_A (max)",
                "savings",
                "T_LB^",
            ),
            rows=[
                (
                    row.wrappers,
                    format_partition(row.partition),
                    round(row.area_cost_joint, 1),
                    round(row.area_cost_max_basis, 1),
                    round(row.savings_cost, 1),
                    row.t_lb_hat,
                )
                for row in self.rows
            ],
            title=(
                "Table 1: area overhead cost and normalized analog "
                "test-time lower bound"
            ),
        )


def run_table1(context: ExperimentContext | None = None) -> Table1Result:
    """Compute Table 1 for the benchmark (no scheduling involved)."""
    context = context or ExperimentContext()
    joint = context.area_model(group_area_basis="joint")
    max_basis = context.area_model(group_area_basis="max")
    rows = []
    for partition in sorted(
        context.combinations, key=lambda p: (-n_wrappers(p), p)
    ):
        rows.append(
            Table1Row(
                partition=partition,
                wrappers=n_wrappers(partition),
                area_cost_joint=joint.area_cost(partition),
                area_cost_max_basis=max_basis.area_cost(partition),
                savings_cost=joint.savings_cost(partition),
                t_lb_hat=normalized_lower_bound(context.cores, partition),
            )
        )
    return Table1Result(rows=tuple(rows))
