"""Consolidated experiment report generation.

Builds a single markdown document with every regenerated table and
figure plus the headline paper-vs-measured comparisons — the artifact a
reviewer reads first.  Used by ``python -m repro report``.
"""

from __future__ import annotations

from .common import ExperimentContext
from .fig4 import run_fig4
from .fig5 import run_fig5
from .table1 import run_table1
from .table2 import run_table2
from .table3 import run_table3
from .table4 import run_table4

__all__ = ["generate_report"]


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def generate_report(
    context: ExperimentContext | None = None,
    include_slow: bool = True,
) -> str:
    """Run the experiments and assemble the markdown report.

    :param context: experiment context (effort preset etc.).
    :param include_slow: include Tables 3 and 4 (the scheduling-heavy
        experiments); disable for a seconds-fast smoke report.
    """
    context = context or ExperimentContext()
    parts: list[str] = [
        "# Reproduction report — Test Planning for Mixed-Signal SOCs "
        "with Wrapped Analog Cores (DATE 2005)",
        "",
        f"SOC: {context.soc.name} ({context.soc.n_digital} digital + "
        f"{context.soc.n_analog} analog cores); packer effort: "
        f"{context.effort}.",
        "",
    ]

    table1 = run_table1(context)
    parts.append(_section("Table 1 — area cost and analog lower bounds",
                          table1.render()))

    table2 = run_table2(context)
    feasible = "all feasible" if table2.all_feasible else "INFEASIBLE rows!"
    parts.append(_section(
        f"Table 2 — analog test requirements ({feasible})",
        table2.render(),
    ))

    fig4 = run_fig4()
    parts.append(_section("Figure 4 — modular converters", fig4.render()))

    fig5 = run_fig5()
    parts.append(_section("Figure 5 — wrapped cut-off test",
                          fig5.render(plots=False)))

    if include_slow:
        table3 = run_table3(context)
        parts.append(_section("Table 3 — normalized test times",
                              table3.render()))
        table4 = run_table4(context)
        parts.append(_section("Table 4 — Cost_Optimizer vs exhaustive",
                              table4.render()))
        parts.append(
            f"Heuristic optimal in {table4.match_count} of "
            f"{len(table4.cells)} cells; mean evaluation reduction "
            f"{table4.mean_reduction_percent:.1f}%.\n"
        )

    parts.append(
        "See EXPERIMENTS.md for the paper-vs-measured discussion and "
        "DESIGN.md for substitutions.\n"
    )
    return "\n".join(parts)
