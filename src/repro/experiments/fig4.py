"""Figure 4 and Section 5 — modular converter complexity and wrapper area.

Reproduces the paper's hardware-cost arguments:

* the modular 8-bit ADC (two 4-bit flash stages) needs **32**
  comparators where a monolithic flash needs **256** (Fig. 4a);
* the modular 8-bit DAC (two 4-bit strings) cuts the resistor count by
  **8x** (Fig. 4b);
* the complete 8-bit wrapper occupies **~0.02 mm²** in the 0.5 µm
  process, about **1/8** of a representative industrial core (and a
  projected ~1/40 in matched technology).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analog_wrapper.area_model import wrapper_area_mm2
from ..analog_wrapper.converters import (
    ConverterSpec,
    ModularDac,
    PipelinedModularAdc,
)
from ..reporting.tables import render_table

__all__ = ["Fig4Result", "run_fig4"]

#: Representative industrial analog core area in its native 0.12 um
#: technology, scaled to 0.5 um for the paper's 1/8 comparison.
INDUSTRIAL_CORE_AREA_MM2 = 0.16

#: Technology scaling factor the paper projects (0.5 um -> same tech).
MATCHED_TECH_RATIO = 1.0 / 40.0


@dataclass(frozen=True)
class Fig4Result:
    """Converter complexity counts and wrapper area summary."""

    bits: int
    modular_comparators: int
    flash_comparators: int
    modular_resistors: int
    monolithic_resistors: int
    wrapper_area_mm2: float
    core_to_wrapper_ratio: float

    @property
    def comparator_reduction(self) -> float:
        """Flash vs modular comparator ratio (8 for 8 bits)."""
        return self.flash_comparators / self.modular_comparators

    @property
    def resistor_reduction(self) -> float:
        """Monolithic vs modular resistor ratio (8 for 8 bits)."""
        return self.monolithic_resistors / self.modular_resistors

    def render(self) -> str:
        """Text summary of the Fig. 4 / Section 5 hardware claims."""
        table = render_table(
            headers=("quantity", "modular", "monolithic", "reduction"),
            rows=[
                (
                    "ADC comparators",
                    self.modular_comparators,
                    self.flash_comparators,
                    round(self.comparator_reduction, 1),
                ),
                (
                    "DAC resistors",
                    self.modular_resistors,
                    self.monolithic_resistors,
                    round(self.resistor_reduction, 1),
                ),
            ],
            title=f"Figure 4: modular {self.bits}-bit converter complexity",
        )
        lines = [
            table,
            "",
            f"wrapper area ({self.bits}-bit, 1.7 MHz, width 1): "
            f"{self.wrapper_area_mm2:.4f} mm^2 (paper: 0.02 mm^2 in 0.5 um)",
            f"industrial core / wrapper area ratio: "
            f"{self.core_to_wrapper_ratio:.1f} (paper: ~8)",
            f"projected matched-technology ratio: "
            f"~{1 / MATCHED_TECH_RATIO:.0f}x smaller than the core",
        ]
        return "\n".join(lines)


def run_fig4(bits: int = 8) -> Fig4Result:
    """Compute the converter complexity and area summary."""
    spec = ConverterSpec(bits)
    adc = PipelinedModularAdc(spec)
    dac = ModularDac(spec)
    area = wrapper_area_mm2(bits, 1.7e6, 1)
    return Fig4Result(
        bits=bits,
        modular_comparators=adc.comparator_count,
        flash_comparators=adc.flash_equivalent_comparators,
        modular_resistors=dac.resistor_count,
        monolithic_resistors=dac.monolithic_resistor_count,
        wrapper_area_mm2=area,
        core_to_wrapper_ratio=INDUSTRIAL_CORE_AREA_MM2 / area,
    )
