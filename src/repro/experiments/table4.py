"""Table 4 — ``Cost_Optimizer`` vs. exhaustive evaluation.

For TAM widths W in {32, 40, 48, 56, 64} and the three weight settings
(w_T, w_A) in {(1/3, 2/3), (1/2, 1/2), (2/3, 1/3)}, run both the
exhaustive search (N_tot = 26 TAM evaluations) and the Figure 3
heuristic (n evaluations), and compare minimum costs, selected sharing
combinations, and the evaluation-count reduction
:math:`\\Delta E = (N_{tot} - n) / N_{tot}`.

The paper finds the heuristic optimal in all but one cell at
``delta = 0`` with ΔE around 60 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.area import AreaModel
from ..core.cost import CostModel, CostWeights, ScheduleEvaluator
from ..core.exhaustive import exhaustive_search
from ..core.optimizer import OptimizationResult, cost_optimizer
from ..core.sharing import format_partition
from ..reporting.tables import render_table
from .common import ExperimentContext

__all__ = ["Table4Cell", "Table4Result", "run_table4", "DEFAULT_TABLE4_WIDTHS"]

#: TAM widths of the paper's Table 4.
DEFAULT_TABLE4_WIDTHS = (32, 40, 48, 56, 64)

#: The three cost weight settings of the paper's Table 4.
DEFAULT_WEIGHTS = (
    CostWeights.area_heavy(),
    CostWeights.balanced(),
    CostWeights.time_heavy(),
)


@dataclass(frozen=True)
class Table4Cell:
    """One (width, weights) cell: both optimizers' outcomes."""

    width: int
    weights: CostWeights
    exhaustive: OptimizationResult
    heuristic: OptimizationResult

    @property
    def heuristic_matches(self) -> bool:
        """Whether the heuristic found the exhaustive optimum."""
        return self.heuristic.best_partition == self.exhaustive.best_partition

    @property
    def cost_gap_percent(self) -> float:
        """Relative cost excess of the heuristic over the optimum."""
        if self.exhaustive.best_cost == 0:
            return 0.0
        return (
            100.0
            * (self.heuristic.best_cost - self.exhaustive.best_cost)
            / self.exhaustive.best_cost
        )


@dataclass(frozen=True)
class Table4Result:
    """All Table 4 cells."""

    cells: tuple[Table4Cell, ...]
    delta: float

    @property
    def match_count(self) -> int:
        """Cells where the heuristic is optimal."""
        return sum(1 for cell in self.cells if cell.heuristic_matches)

    @property
    def mean_reduction_percent(self) -> float:
        """Average ΔE over the cells."""
        return sum(c.heuristic.reduction_percent for c in self.cells) / len(
            self.cells
        )

    def render(self) -> str:
        """Paper-style comparison table."""
        rows = []
        for cell in self.cells:
            rows.append(
                (
                    f"({cell.weights.time:.2f},{cell.weights.area:.2f})",
                    cell.width,
                    round(cell.exhaustive.best_cost, 1),
                    format_partition(cell.exhaustive.best_partition),
                    round(cell.heuristic.best_cost, 1),
                    format_partition(cell.heuristic.best_partition),
                    cell.heuristic.n_evaluated,
                    round(cell.heuristic.reduction_percent, 1),
                    cell.heuristic_matches,
                )
            )
        return render_table(
            headers=(
                "(w_T,w_A)",
                "W",
                "C*_exh",
                "P_exh",
                "C*_heur",
                "P_heur",
                "n",
                "dE%",
                "optimal",
            ),
            rows=rows,
            title=(
                f"Table 4: Cost_Optimizer (delta={self.delta}) vs "
                f"exhaustive evaluation (N_tot = "
                f"{self.cells[0].exhaustive.n_total})"
            ),
        )


def run_table4(
    context: ExperimentContext | None = None,
    widths: tuple[int, ...] = DEFAULT_TABLE4_WIDTHS,
    weights: tuple[CostWeights, ...] = DEFAULT_WEIGHTS,
    delta: float = 0.0,
) -> Table4Result:
    """Run heuristic and exhaustive planning across the Table 4 grid."""
    context = context or ExperimentContext()
    combos = context.combinations
    area_model: AreaModel = context.area_model()
    cells = []
    for width in widths:
        for weight in weights:
            heuristic_model = CostModel(
                context.soc,
                width,
                weight,
                area_model,
                evaluator=ScheduleEvaluator(
                    context.soc, width, **context.pack_kwargs
                ),
            )
            heuristic = cost_optimizer(heuristic_model, combos, delta=delta)
            exhaustive_model = CostModel(
                context.soc,
                width,
                weight,
                area_model,
                evaluator=ScheduleEvaluator(
                    context.soc, width, **context.pack_kwargs
                ),
            )
            exhaustive = exhaustive_search(exhaustive_model, combos)
            cells.append(
                Table4Cell(
                    width=width,
                    weights=weight,
                    exhaustive=exhaustive,
                    heuristic=heuristic,
                )
            )
    return Table4Result(cells=tuple(cells), delta=delta)
