"""Table 3 — normalized SOC test time per sharing combination and width.

For every sharing combination of Table 1 and every TAM width in
``widths`` (the paper shows W = 32, 48, 64), run the TAM optimizer and
report the test time normalized to the all-sharing combination at that
width (which is 100 by construction).

The derived statistics reproduce Section 6's observation: the spread
between the best and worst combination **grows with the TAM width**
(the digital test time shrinks, so the serialized analog wrappers
become the bottleneck; the paper reports spreads 2.45 / 7.36 / 17.18 at
W = 32 / 48 / 64).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cost import ScheduleEvaluator
from ..core.sharing import (
    Partition,
    all_sharing,
    format_partition,
    n_wrappers,
)
from ..reporting.tables import render_table
from .common import ExperimentContext

__all__ = ["Table3Result", "run_table3", "DEFAULT_WIDTHS"]

#: TAM widths shown in the paper's Table 3.
DEFAULT_WIDTHS = (32, 48, 64)


@dataclass(frozen=True)
class Table3Result:
    """Normalized test times: ``values[(partition, width)]`` in 0..100."""

    widths: tuple[int, ...]
    partitions: tuple[Partition, ...]
    makespans: dict[tuple[Partition, int], int]
    all_share_makespans: dict[int, int]

    def normalized(self, partition: Partition, width: int) -> float:
        """Test time normalized to the all-share case at *width*."""
        return (
            100.0
            * self.makespans[(partition, width)]
            / self.all_share_makespans[width]
        )

    def spread(self, width: int) -> float:
        """Best-to-worst normalized test-time spread at *width*."""
        values = [self.normalized(p, width) for p in self.partitions]
        return max(values) - min(values)

    def best_partitions(self, width: int) -> tuple[Partition, ...]:
        """Combinations achieving the lowest test time at *width*."""
        values = {p: self.normalized(p, width) for p in self.partitions}
        best = min(values.values())
        return tuple(
            p for p, v in sorted(values.items()) if abs(v - best) < 1e-9
        )

    def render(self) -> str:
        """Paper-style table plus the spread statistics."""
        rows = []
        for partition in sorted(
            self.partitions, key=lambda p: (-n_wrappers(p), p)
        ):
            rows.append(
                (
                    n_wrappers(partition),
                    format_partition(partition),
                    *(
                        round(self.normalized(partition, w), 1)
                        for w in self.widths
                    ),
                )
            )
        table = render_table(
            headers=("N_w", "combination")
            + tuple(f"W={w}" for w in self.widths),
            rows=rows,
            title=(
                "Table 3: SOC test time per wrapper-sharing combination "
                "(normalized to all-share = 100)"
            ),
        )
        spread_lines = [
            f"spread (max - min) at W={w}: {self.spread(w):.2f}"
            for w in self.widths
        ]
        return table + "\n\n" + "\n".join(spread_lines)


def run_table3(
    context: ExperimentContext | None = None,
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
) -> Table3Result:
    """Evaluate every sharing combination at every width."""
    context = context or ExperimentContext()
    partitions = tuple(context.combinations)
    full = all_sharing(context.core_names)
    makespans: dict[tuple[Partition, int], int] = {}
    all_share: dict[int, int] = {}
    for width in widths:
        evaluator = ScheduleEvaluator(
            context.soc, width, **context.pack_kwargs
        )
        # coarsest first: refinement monotonicity propagates best
        for partition in sorted(partitions, key=lambda p: (len(p), p)):
            makespans[(partition, width)] = evaluator.makespan(partition)
        all_share[width] = evaluator.makespan(full)
    return Table3Result(
        widths=tuple(widths),
        partitions=partitions,
        makespans=makespans,
        all_share_makespans=all_share,
    )
