"""Figure 5 — cut-off frequency test through the analog wrapper.

The paper's demonstration (Section 5): a three-tone stimulus is applied
to the low-pass filter core both *directly* (pure analog measurement)
and *through the 8-bit wrapper* (DAC -> core -> ADC).  The spectra of
the two responses are compared and the cut-off frequency extrapolated
from each; the wrapped path reads ~5 % low (61 kHz -> 58 kHz), the error
budget being set by the wrapper's converters and analog front-end.

Parameters follow the paper: 50 MHz system clock, 1.7 MHz sampling,
4551 samples, 4 V supply, 8-bit converters, three tones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analog_wrapper.wrapper import (
    AnalogTestWrapper,
    WrapperHardware,
    WrapperMode,
)
from ..reporting.ascii_plot import ascii_plot
from ..signal.cutoff import CutoffFit, fit_cutoff
from ..signal.filters import ButterworthLowpass
from ..signal.multitone import Tone, multitone
from ..signal.spectrum import spectrum_db, tone_gains_db

__all__ = ["Fig5Result", "run_fig5", "FIG5_DEFAULTS"]

#: The paper's Section 5 experiment constants.
FIG5_DEFAULTS = {
    "sample_freq_hz": 1.7e6,
    "n_samples": 4551,
    "system_clock_hz": 50e6,
    "supply_v": 4.0,
    "cutoff_hz": 61e3,
    "filter_order": 3,
    "resolution_bits": 8,
    "tone_freqs_hz": (20e3, 61e3, 150e3),
    "tone_amplitude_v": 0.6,
    # wrapper nonideality budget: converter INL, residue-amplifier gain
    # error, and the analog front-end bandwidth that dominates the
    # systematic cut-off shift
    "inl_lsb": 0.6,
    "gain_error": 0.012,
    "analog_bandwidth_hz": 350e3,
}


@dataclass(frozen=True)
class Fig5Result:
    """Spectra and extracted cut-offs of the Figure 5 experiment."""

    tone_freqs_hz: tuple[float, ...]
    sample_freq_hz: float
    stimulus: np.ndarray
    direct_response: np.ndarray
    wrapped_response: np.ndarray
    direct_gains_db: tuple[float, ...]
    wrapped_gains_db: tuple[float, ...]
    direct_fit: CutoffFit
    wrapped_fit: CutoffFit
    true_cutoff_hz: float

    @property
    def relative_error(self) -> float:
        """Wrapped-vs-direct cut-off error (fraction)."""
        return self.wrapped_fit.error_vs(self.direct_fit.cutoff_hz)

    def spectra(self):
        """The three spectra of Figure 5: input, direct, wrapped (dB)."""
        return (
            spectrum_db(self.stimulus, self.sample_freq_hz),
            spectrum_db(self.direct_response, self.sample_freq_hz),
            spectrum_db(self.wrapped_response, self.sample_freq_hz),
        )

    def render(self, plots: bool = True, max_freq_hz: float = 250e3) -> str:
        """Figure-style summary with optional ASCII spectra."""
        lines = [
            "Figure 5: cut-off test, direct analog vs wrapped analog core",
            f"tones: {', '.join(f'{f / 1e3:g} kHz' for f in self.tone_freqs_hz)}"
            f"   fs = {self.sample_freq_hz / 1e6:g} MHz   "
            f"N = {len(self.stimulus)}",
            f"direct  f_c = {self.direct_fit.cutoff_hz / 1e3:.1f} kHz "
            f"(model {self.true_cutoff_hz / 1e3:.0f} kHz)",
            f"wrapped f_c = {self.wrapped_fit.cutoff_hz / 1e3:.1f} kHz",
            f"error = {self.relative_error * 100:.1f}% "
            "(paper: ~5%, 61 kHz -> 58 kHz)",
        ]
        if plots:
            titles = (
                "(a) applied multi-tone spectrum",
                "(b) direct analog response",
                "(c) wrapped analog core response",
            )
            for title, (freqs, amps) in zip(titles, self.spectra()):
                mask = (freqs > 0) & (freqs <= max_freq_hz)
                lines.append("")
                lines.append(
                    ascii_plot(
                        list(freqs[mask] / 1e3),
                        list(amps[mask]),
                        title=title,
                        x_label="kHz",
                        y_label="dB",
                    )
                )
        return "\n".join(lines)


def run_fig5(**overrides) -> Fig5Result:
    """Run the Figure 5 experiment (keyword overrides per
    :data:`FIG5_DEFAULTS`)."""
    params = dict(FIG5_DEFAULTS)
    unknown = set(overrides) - set(params)
    if unknown:
        raise TypeError(f"unknown fig5 parameters: {sorted(unknown)}")
    params.update(overrides)

    fs = params["sample_freq_hz"]
    n = params["n_samples"]
    tones_f = tuple(params["tone_freqs_hz"])
    tones = tuple(
        Tone(f, amplitude=params["tone_amplitude_v"]) for f in tones_f
    )
    stimulus = multitone(tones, fs, n)
    core = ButterworthLowpass(
        cutoff_hz=params["cutoff_hz"], order=params["filter_order"]
    )

    # direct analog measurement
    direct = core.response(stimulus, fs)
    direct_gains = tuple(tone_gains_db(stimulus, direct, fs, tones_f))
    direct_fit = fit_cutoff(tones_f, direct_gains, order=params["filter_order"])

    # wrapped measurement: quantized stimulus through DAC-core-ADC
    hardware = WrapperHardware(
        resolution_bits=params["resolution_bits"],
        max_sample_freq_hz=max(2.5 * fs, 2e6),
        tam_width=4,
        full_scale_v=params["supply_v"],
    )
    wrapper = AnalogTestWrapper(
        hardware,
        tam_clock_hz=params["system_clock_hz"],
        inl_lsb=params["inl_lsb"],
        gain_error=params["gain_error"],
        analog_bandwidth_hz=params["analog_bandwidth_hz"],
        seed=7,
    )
    wrapper.set_mode(WrapperMode.CORE_TEST)
    codes_in = wrapper.encode_stimulus(stimulus)
    codes_out = wrapper.apply_test(core, codes_in, fs)
    wrapped = wrapper.decode_response(codes_out)
    # gains are measured against what actually drove the core
    reference = wrapper.dac.convert(codes_in)
    wrapped_gains = tuple(tone_gains_db(reference, wrapped, fs, tones_f))
    wrapped_fit = fit_cutoff(
        tones_f, wrapped_gains, order=params["filter_order"]
    )

    return Fig5Result(
        tone_freqs_hz=tones_f,
        sample_freq_hz=fs,
        stimulus=stimulus,
        direct_response=direct,
        wrapped_response=wrapped,
        direct_gains_db=direct_gains,
        wrapped_gains_db=wrapped_gains,
        direct_fit=direct_fit,
        wrapped_fit=wrapped_fit,
        true_cutoff_hz=params["cutoff_hz"],
    )
