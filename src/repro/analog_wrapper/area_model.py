"""Area model for analog test wrappers.

The paper reports an 8-bit wrapper occupying **0.02 mm² in the 0.5 µm
AMI process** (Section 5) and argues that the modular converter
architecture keeps the comparator count — the dominant area contributor
— low.  Per-core wrapper areas are *not* tabulated, so the sharing cost
:math:`C_A` (Eq. 1) needs an area model; DESIGN.md records this as a
documented substitution.

The model composes the wrapper block diagram (Fig. 1):

* **ADC** — two half-resolution flash banks (Fig. 4a): comparator count
  ``2 * 2^(B/2)``, with per-comparator area growing with the sampling
  rate (bias current and bandwidth scale with speed: a mild
  square-root law), plus the inter-stage DAC resistors;
* **DAC** — two half-resolution resistor strings (Fig. 4b) plus
  switches;
* **encoder / decoder** — scales with resolution x TAM width (the
  serial-to-parallel conversion fabric);
* **registers** — input and output sample registers, one flop per bit;
* **control** — fixed test-control FSM overhead.

The constants are calibrated so the paper's demonstrator configuration
(8 bits, 1.7 MHz sampling, width-1 TAM) lands on 0.02 mm²; a regression
test pins that calibration.
"""

from __future__ import annotations

import math

__all__ = [
    "comparator_area_um2",
    "adc_area_um2",
    "dac_area_um2",
    "encoder_decoder_area_um2",
    "register_area_um2",
    "CONTROL_AREA_UM2",
    "wrapper_area_mm2",
    "wrapper_area_um2",
]

#: Per-comparator base area in the 0.5 um process (um^2), at low speed.
#: Calibrated so the 8-bit / 1.7 MHz / width-1 demonstrator wrapper is
#: 0.020 mm^2, the paper's reported test-chip area.
COMPARATOR_BASE_UM2 = 284.5

#: Speed scaling reference frequency: comparator area grows as
#: ``1 + SPEED_FACTOR * sqrt(f / SPEED_REF_HZ)``.
SPEED_REF_HZ = 10e6
SPEED_FACTOR = 0.5

#: Unit resistor area (um^2).
RESISTOR_UM2 = 60.0

#: Analog switch area (um^2), two per string tap pair.
SWITCH_UM2 = 30.0

#: Encoder/decoder fabric area per (bit x TAM wire) (um^2).
ENCODER_UM2_PER_BIT_WIRE = 150.0

#: Register area per bit (um^2), input and output registers.
REGISTER_UM2_PER_BIT = 80.0

#: Fixed test-control circuit area (um^2).
CONTROL_AREA_UM2 = 1500.0


def comparator_area_um2(sample_freq_hz: float) -> float:
    """Area of one comparator at the given sampling rate."""
    if sample_freq_hz <= 0:
        raise ValueError(
            f"sample_freq_hz must be positive, got {sample_freq_hz}"
        )
    speed = 1.0 + SPEED_FACTOR * math.sqrt(sample_freq_hz / SPEED_REF_HZ)
    return COMPARATOR_BASE_UM2 * speed


def adc_area_um2(resolution_bits: int, sample_freq_hz: float) -> float:
    """Modular pipelined ADC area (comparators + inter-stage DAC)."""
    if resolution_bits < 1:
        raise ValueError(
            f"resolution_bits must be >= 1, got {resolution_bits}"
        )
    half = math.ceil(resolution_bits / 2)
    comparators = 2 * 2**half
    stage_dac_resistors = 2**half
    return (
        comparators * comparator_area_um2(sample_freq_hz)
        + stage_dac_resistors * RESISTOR_UM2
    )


def dac_area_um2(resolution_bits: int) -> float:
    """Modular voltage-steering DAC area (strings + switches)."""
    if resolution_bits < 1:
        raise ValueError(
            f"resolution_bits must be >= 1, got {resolution_bits}"
        )
    half = math.ceil(resolution_bits / 2)
    resistors = 2 * 2**half
    switches = 2 * 2**half
    return resistors * RESISTOR_UM2 + switches * SWITCH_UM2


def encoder_decoder_area_um2(resolution_bits: int, tam_width: int) -> float:
    """Encoder plus decoder area for the serial-parallel fabric."""
    if tam_width < 1:
        raise ValueError(f"tam_width must be >= 1, got {tam_width}")
    return 2 * ENCODER_UM2_PER_BIT_WIRE * resolution_bits * tam_width


def register_area_um2(resolution_bits: int) -> float:
    """Input plus output register area."""
    return 2 * REGISTER_UM2_PER_BIT * resolution_bits


def wrapper_area_um2(
    resolution_bits: int, sample_freq_hz: float, tam_width: int
) -> float:
    """Total analog test wrapper area in um^2."""
    return (
        adc_area_um2(resolution_bits, sample_freq_hz)
        + dac_area_um2(resolution_bits)
        + encoder_decoder_area_um2(resolution_bits, tam_width)
        + register_area_um2(resolution_bits)
        + CONTROL_AREA_UM2
    )


def wrapper_area_mm2(
    resolution_bits: int, sample_freq_hz: float, tam_width: int
) -> float:
    """Total analog test wrapper area in mm^2.

    The paper's demonstrator (8 bits, 1.7 MHz, one TAM wire) evaluates
    to ~0.02 mm², matching the reported test-chip area in 0.5 um.
    """
    return wrapper_area_um2(resolution_bits, sample_freq_hz, tam_width) / 1e6
