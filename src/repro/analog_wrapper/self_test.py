"""Wrapper converter self-test (BIST) time model.

The paper excludes the self-test mode from its test times ("the
self-test mode test time has not been considered") and lists the cost
of testing the wrapper's own data converters as future work, pointing
at histogram/linearity BIST schemes (its refs [16]-[18]).  This module
provides that extension.

A histogram-based linearity BIST applies a slow ramp (or stationary
nonlinear input) and collects a per-code histogram; statistically
meaningful INL/DNL estimates need a number of samples proportional to
the code count:

.. math:: T_{self} = k \\cdot 2^{B}

TAM cycles for a ``B``-bit converter pair with ``k`` samples per code
(default 16).  Sharing wrappers *reduces* total self-test time — one
shared converter pair is screened once instead of once per core — which
counteracts the serialization penalty of sharing; the ablation bench
quantifies the shift.
"""

from __future__ import annotations

__all__ = ["self_test_cycles", "DEFAULT_SAMPLES_PER_CODE"]

#: Histogram BIST samples collected per output code.
DEFAULT_SAMPLES_PER_CODE = 16


def self_test_cycles(
    resolution_bits: int,
    samples_per_code: int = DEFAULT_SAMPLES_PER_CODE,
) -> int:
    """TAM cycles to self-test a wrapper's ADC-DAC pair.

    :param resolution_bits: converter resolution of the wrapper.
    :param samples_per_code: histogram depth per code (statistical
        confidence knob).
    :raises ValueError: on non-positive arguments.
    """
    if resolution_bits < 1:
        raise ValueError(
            f"resolution_bits must be >= 1, got {resolution_bits}"
        )
    if samples_per_code < 1:
        raise ValueError(
            f"samples_per_code must be >= 1, got {samples_per_code}"
        )
    return samples_per_code * 2**resolution_bits
