"""Analog test wrappers: converters, behavioural model, sizing, area."""

from .area_model import (
    adc_area_um2,
    comparator_area_um2,
    dac_area_um2,
    encoder_decoder_area_um2,
    register_area_um2,
    wrapper_area_mm2,
    wrapper_area_um2,
)
from .converters import (
    ConverterSpec,
    FlashAdc,
    ModularDac,
    PipelinedModularAdc,
    ResistorStringDac,
    flash_comparator_count,
    resistor_string_count,
)
from .sizing import (
    DEFAULT_POLICY,
    CompatibilityPolicy,
    core_wrapper_hardware,
    shared_hardware,
    wrapper_requirements,
)
from .wrapper import (
    DEFAULT_TAM_CLOCK_HZ,
    AnalogTestWrapper,
    ConfigurationError,
    TestConfiguration,
    WrapperHardware,
    WrapperMode,
)

__all__ = [
    "AnalogTestWrapper",
    "CompatibilityPolicy",
    "ConfigurationError",
    "ConverterSpec",
    "DEFAULT_POLICY",
    "DEFAULT_TAM_CLOCK_HZ",
    "FlashAdc",
    "ModularDac",
    "PipelinedModularAdc",
    "ResistorStringDac",
    "TestConfiguration",
    "WrapperHardware",
    "WrapperMode",
    "adc_area_um2",
    "comparator_area_um2",
    "core_wrapper_hardware",
    "dac_area_um2",
    "encoder_decoder_area_um2",
    "flash_comparator_count",
    "register_area_um2",
    "resistor_string_count",
    "shared_hardware",
    "wrapper_area_mm2",
    "wrapper_area_um2",
    "wrapper_requirements",
]
