"""Bit-level serial/parallel streaming through the wrapper registers.

The wrapper's decoder assembles TAM bits into DAC codes and its encoder
spreads ADC codes back over the TAM wires (Fig. 1: "the registers at
each end of the data converters are written and read in a semi-serial
fashion").  This module models that datapath exactly at the bit level:

* :func:`serialize_codes` — converter codes → the TAM bit matrix
  (one row per TAM cycle, one column per wire);
* :func:`deserialize_codes` — the inverse;
* :func:`stream_cycles` — the exact cycle count of a transfer, which
  ties Table 2's TAM widths to the bandwidth rule of
  :class:`~repro.analog_wrapper.wrapper.TestConfiguration`.

Bits are packed MSB-first, samples back to back across cycles; the
final cycle is zero-padded.  Round-tripping is exact (property-tested).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["serialize_codes", "deserialize_codes", "stream_cycles"]


def stream_cycles(n_samples: int, bits: int, width: int) -> int:
    """TAM cycles to stream *n_samples* codes of *bits* over *width* wires."""
    if n_samples < 0:
        raise ValueError(f"n_samples must be >= 0, got {n_samples}")
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    return math.ceil(n_samples * bits / width)


def serialize_codes(
    codes: np.ndarray, bits: int, width: int
) -> np.ndarray:
    """Pack converter codes into a TAM bit matrix.

    :param codes: integer codes in ``[0, 2^bits)``.
    :param bits: code resolution.
    :param width: TAM wires.
    :returns: uint8 array of shape ``(stream_cycles, width)``; element
        ``[c, w]`` is the bit on wire *w* during cycle *c*.
    :raises ValueError: on out-of-range codes.
    """
    codes = np.atleast_1d(np.asarray(codes))
    if codes.size and (codes.min() < 0 or codes.max() >= 2**bits):
        raise ValueError(
            f"codes must lie in [0, {2**bits - 1}], got range "
            f"[{codes.min()}, {codes.max()}]"
        )
    n = codes.size
    cycles = stream_cycles(n, bits, width)
    flat = np.zeros(cycles * width, dtype=np.uint8)
    for b in range(bits):
        # bit b of every code, MSB first
        flat[b::bits][:n] = (codes >> (bits - 1 - b)) & 1
    return flat.reshape(cycles, width)


def deserialize_codes(
    bit_matrix: np.ndarray, bits: int, n_samples: int
) -> np.ndarray:
    """Unpack a TAM bit matrix back into converter codes.

    :param bit_matrix: output of :func:`serialize_codes`.
    :param bits: code resolution.
    :param n_samples: number of codes to recover (trailing padding is
        discarded).
    :raises ValueError: if the matrix is too small for *n_samples*.
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if n_samples < 0:
        raise ValueError(f"n_samples must be >= 0, got {n_samples}")
    flat = np.asarray(bit_matrix, dtype=np.uint8).reshape(-1)
    if flat.size < n_samples * bits:
        raise ValueError(
            f"bit matrix holds {flat.size} bits, need "
            f"{n_samples * bits} for {n_samples} samples of {bits} bits"
        )
    codes = np.zeros(n_samples, dtype=np.int64)
    for b in range(bits):
        codes |= flat[b::bits][:n_samples].astype(np.int64) << (
            bits - 1 - b
        )
    return codes
