"""Behavioural model of the analog test wrapper (Figure 1).

The wrapper turns an analog core into a *virtual digital core*: digital
test patterns arrive over the TAM, a decoder and input register assemble
them into DAC codes, the DAC drives the core, the ADC digitizes the
response, and an encoder streams the output codes back onto the TAM.

A digital test control circuit selects a per-test configuration
(Section 2): the divide ratio between the TAM clock and the converter
sampling clock, the serial-to-parallel conversion rate of the registers,
and the test mode — normal (wrapper transparent), self-test (DAC
looped into ADC), or core-test (through the core).

:class:`WrapperHardware` captures the *sizing* of one wrapper instance;
:class:`TestConfiguration` the per-test settings with their feasibility
rule; :class:`AnalogTestWrapper` executes tests behaviourally.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from ..soc.model import AnalogCore, AnalogTest
from .area_model import wrapper_area_mm2
from .converters import ConverterSpec, ModularDac, PipelinedModularAdc

__all__ = [
    "WrapperMode",
    "WrapperHardware",
    "TestConfiguration",
    "ConfigurationError",
    "AnalogTestWrapper",
    "DEFAULT_TAM_CLOCK_HZ",
]

#: The paper's system (TAM) clock in the Section 5 demonstration.
DEFAULT_TAM_CLOCK_HZ = 50e6


class WrapperMode(enum.Enum):
    """Operating modes of the wrapper's test control circuit."""

    NORMAL = "normal"
    SELF_TEST = "self_test"
    CORE_TEST = "core_test"


class ConfigurationError(ValueError):
    """Raised when a test cannot be configured on a wrapper."""


@dataclass(frozen=True)
class WrapperHardware:
    """Sizing of one analog test wrapper instance.

    :param resolution_bits: ADC/DAC resolution (rounded up to even for
        the modular two-stage converters).
    :param max_sample_freq_hz: fastest converter sampling rate the
        wrapper supports.
    :param tam_width: widest TAM connection the encoder/decoder serves.
    :param full_scale_v: converter full scale (the paper uses a 4 V
        supply).
    """

    resolution_bits: int
    max_sample_freq_hz: float
    tam_width: int
    full_scale_v: float = 4.0

    def __post_init__(self) -> None:
        if self.resolution_bits < 1:
            raise ValueError(
                f"resolution_bits must be >= 1, got {self.resolution_bits}"
            )
        if self.max_sample_freq_hz <= 0:
            raise ValueError(
                f"max_sample_freq_hz must be positive, got "
                f"{self.max_sample_freq_hz}"
            )
        if self.tam_width < 1:
            raise ValueError(f"tam_width must be >= 1, got {self.tam_width}")
        if self.full_scale_v <= 0:
            raise ValueError(
                f"full_scale_v must be positive, got {self.full_scale_v}"
            )

    @property
    def converter_bits(self) -> int:
        """Physical converter resolution (even, for the 4+4 style split)."""
        return self.resolution_bits + (self.resolution_bits % 2)

    @property
    def area_mm2(self) -> float:
        """Wrapper area from the calibrated model (mm^2)."""
        return wrapper_area_mm2(
            self.resolution_bits, self.max_sample_freq_hz, self.tam_width
        )

    def supports(self, test: AnalogTest, resolution_bits: int) -> bool:
        """Whether this wrapper can apply *test* at *resolution_bits*."""
        return (
            resolution_bits <= self.resolution_bits
            and test.sample_freq_hz <= self.max_sample_freq_hz
            and test.tam_width <= self.tam_width
        )


@dataclass(frozen=True)
class TestConfiguration:
    """Per-test wrapper settings chosen by the test control circuit.

    The wrapper streams ``resolution_bits`` bits per converter sample
    over ``tam_width`` wires running at ``tam_clock_hz``; the registers
    perform serial-to-parallel conversion at
    :attr:`serial_to_parallel_ratio` TAM cycles per sample.  The
    fundamental feasibility rule is bandwidth::

        resolution_bits * sample_freq <= tam_width * tam_clock

    which is exactly what makes Table 2's TAM widths necessary: e.g. the
    down-converter IIP3 test needs 6 bits x 78 MHz = 468 Mb/s, hence 10
    wires at the 50 MHz TAM clock.
    """

    #: pytest: not a test class despite the Test* name
    __test__ = False

    test: AnalogTest
    resolution_bits: int
    tam_clock_hz: float

    def __post_init__(self) -> None:
        if self.resolution_bits < 1:
            raise ValueError(
                f"resolution_bits must be >= 1, got {self.resolution_bits}"
            )
        if self.tam_clock_hz <= 0:
            raise ValueError(
                f"tam_clock_hz must be positive, got {self.tam_clock_hz}"
            )

    @property
    def bits_per_tam_cycle(self) -> float:
        """TAM payload bandwidth the test consumes, bits per TAM cycle."""
        return (
            self.resolution_bits
            * self.test.sample_freq_hz
            / self.tam_clock_hz
        )

    @property
    def is_feasible(self) -> bool:
        """Bandwidth rule: payload fits the test's TAM width."""
        return self.bits_per_tam_cycle <= self.test.tam_width + 1e-9

    @property
    def divide_ratio(self) -> float:
        """TAM-clock cycles per converter sample (may be < 1 when the
        converters outrun the TAM and the registers buffer instead)."""
        return self.tam_clock_hz / self.test.sample_freq_hz

    @property
    def serial_to_parallel_ratio(self) -> int:
        """Register shift cycles needed to assemble one sample's bits."""
        return math.ceil(self.resolution_bits / self.test.tam_width)


class AnalogTestWrapper:
    """Executable wrapper: converters + registers + mode control.

    :param hardware: the wrapper instance sizing.
    :param tam_clock_hz: TAM clock used for configurations.
    :param inl_lsb: converter nonideality budget (stage-LSB units).
    :param gain_error: pipelined-ADC residue-amplifier gain error.
    :param analog_bandwidth_hz: -3 dB bandwidth of the wrapper's analog
        front-end (DAC reconstruction buffer and ADC track-and-hold,
        modelled as one pole on each side of the core).  ``None`` means
        an ideal (infinite-bandwidth) front-end.  This is the dominant
        *systematic* error source in the wrapped measurement — it droops
        the higher test tones and biases the extracted cut-off low,
        which is exactly the paper's Figure 5 observation (61 kHz direct
        vs 58 kHz wrapped).
    :param seed: seed for the deterministic mismatch patterns.
    """

    def __init__(
        self,
        hardware: WrapperHardware,
        tam_clock_hz: float = DEFAULT_TAM_CLOCK_HZ,
        inl_lsb: float = 0.0,
        gain_error: float = 0.0,
        analog_bandwidth_hz: float | None = None,
        seed: int = 0,
    ):
        if analog_bandwidth_hz is not None and analog_bandwidth_hz <= 0:
            raise ValueError(
                f"analog_bandwidth_hz must be positive, got "
                f"{analog_bandwidth_hz}"
            )
        self.hardware = hardware
        self.tam_clock_hz = tam_clock_hz
        self.analog_bandwidth_hz = analog_bandwidth_hz
        spec = ConverterSpec(hardware.converter_bits, hardware.full_scale_v)
        self.adc = PipelinedModularAdc(
            spec, inl_lsb=inl_lsb, gain_error=gain_error, seed=seed
        )
        self.dac = ModularDac(spec, inl_lsb=inl_lsb, seed=seed + 10)
        self.mode = WrapperMode.NORMAL

    def _front_end(self, x: np.ndarray, sample_freq_hz: float) -> np.ndarray:
        """One-pole front-end applied on each analog boundary."""
        if self.analog_bandwidth_hz is None:
            return x
        from scipy import signal as sp_signal

        b, a = sp_signal.bilinear(
            [2 * np.pi * self.analog_bandwidth_hz],
            [1.0, 2 * np.pi * self.analog_bandwidth_hz],
            fs=sample_freq_hz,
        )
        return sp_signal.lfilter(b, a, x)

    def set_mode(self, mode: WrapperMode) -> None:
        """Switch the wrapper's test mode."""
        if not isinstance(mode, WrapperMode):
            raise TypeError(f"expected WrapperMode, got {type(mode).__name__}")
        self.mode = mode

    def configure(
        self, core: AnalogCore, test: AnalogTest
    ) -> TestConfiguration:
        """Build and validate the configuration for *test* of *core*.

        :raises ConfigurationError: if the wrapper hardware cannot apply
            the test, or the TAM bandwidth rule fails.
        """
        resolution = core.test_resolution(test)
        if not self.hardware.supports(test, resolution):
            raise ConfigurationError(
                f"wrapper (res={self.hardware.resolution_bits}b, "
                f"fs<={self.hardware.max_sample_freq_hz:.3g}Hz, "
                f"width<={self.hardware.tam_width}) cannot host test "
                f"{core.name}.{test.name} (res={resolution}b, "
                f"fs={test.sample_freq_hz:.3g}Hz, width={test.tam_width})"
            )
        config = TestConfiguration(
            test=test,
            resolution_bits=resolution,
            tam_clock_hz=self.tam_clock_hz,
        )
        if not config.is_feasible:
            raise ConfigurationError(
                f"test {core.name}.{test.name} needs "
                f"{config.bits_per_tam_cycle:.2f} bits/TAM-cycle but has "
                f"width {test.tam_width}"
            )
        return config

    def encode_stimulus(self, voltages: np.ndarray) -> np.ndarray:
        """Quantize an analog stimulus into the digital TAM patterns.

        This is what an ATE-side test generator does once, offline: the
        analog waveform becomes the digital vector stream stored with the
        test.
        """
        spec = self.dac.spec
        codes = np.clip(
            np.floor((np.asarray(voltages) - spec.v_min) / spec.lsb_v),
            0,
            spec.levels - 1,
        )
        return codes.astype(int)

    def apply_test(
        self,
        core_model,
        stimulus_codes: np.ndarray,
        sample_freq_hz: float,
    ) -> np.ndarray:
        """Run a core-test: DAC -> core -> ADC, returning response codes.

        :param core_model: object with ``response(x, fs)`` (e.g.
            :class:`repro.signal.filters.ButterworthLowpass`).
        :param stimulus_codes: digital input pattern stream.
        :param sample_freq_hz: converter sampling rate for this test.
        :raises RuntimeError: unless the wrapper is in core-test mode.
        """
        if self.mode is not WrapperMode.CORE_TEST:
            raise RuntimeError(
                f"core-test requires WrapperMode.CORE_TEST, wrapper is in "
                f"{self.mode.value}"
            )
        analog_in = self._front_end(
            self.dac.convert(np.asarray(stimulus_codes)), sample_freq_hz
        )
        analog_out = core_model.response(analog_in, sample_freq_hz)
        return self.adc.convert(self._front_end(analog_out, sample_freq_hz))

    def self_test(self, stimulus_codes: np.ndarray) -> np.ndarray:
        """Loop the DAC directly into the ADC (self-test mode).

        An ideal wrapper returns the stimulus codes unchanged; deviations
        expose converter faults, which is how the wrapper's own data
        converters are screened before trusting core tests.

        :raises RuntimeError: unless the wrapper is in self-test mode.
        """
        if self.mode is not WrapperMode.SELF_TEST:
            raise RuntimeError(
                f"self-test requires WrapperMode.SELF_TEST, wrapper is in "
                f"{self.mode.value}"
            )
        return self.adc.convert(self.dac.convert(np.asarray(stimulus_codes)))

    def decode_response(self, codes: np.ndarray) -> np.ndarray:
        """Map response codes back to voltages (mid-step reconstruction)."""
        spec = self.adc.spec
        return spec.v_min + (np.asarray(codes) + 0.5) * spec.lsb_v
