"""Shared-wrapper sizing and compatibility rules (Section 3).

When several analog cores share one test wrapper:

* the ADC/DAC resolution is the **maximum** of the sharing cores'
  resolution requirements;
* the encoder/decoder are designed for the test with the **largest TAM
  width** requirement;
* the converters must reach the **fastest sampling rate** any sharing
  core's tests need.

The paper also warns that "a module that requires high-speed and
low-resolution data converters cannot share its wrapper with a module
that requires high-resolution and low-speed data converters" — a joint
high-speed *and* high-resolution converter is not achievable with
reasonable overhead.  :class:`CompatibilityPolicy` encodes that rule as
thresholds; the defaults are loose enough that all of the paper's Table
1 combinations remain admissible (the paper evaluates them all), while
the ablation bench tightens them to show the mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..soc.model import AnalogCore
from .area_model import wrapper_area_mm2
from .wrapper import WrapperHardware

__all__ = [
    "wrapper_requirements",
    "shared_hardware",
    "core_wrapper_hardware",
    "CompatibilityPolicy",
    "DEFAULT_POLICY",
]


def wrapper_requirements(
    cores: Sequence[AnalogCore],
) -> tuple[int, float, int]:
    """Joint (resolution_bits, max_sample_freq_hz, tam_width) of *cores*.

    :raises ValueError: if *cores* is empty.
    """
    if not cores:
        raise ValueError("at least one core is required")
    resolution = max(core.resolution_bits for core in cores)
    speed = max(core.max_sample_freq_hz for core in cores)
    width = max(core.max_tam_width for core in cores)
    return resolution, speed, width


def core_wrapper_hardware(core: AnalogCore) -> WrapperHardware:
    """The private (unshared) wrapper sizing for one core."""
    return shared_hardware([core])


def shared_hardware(cores: Sequence[AnalogCore]) -> WrapperHardware:
    """Wrapper hardware sized for all of *cores* (max of requirements)."""
    resolution, speed, width = wrapper_requirements(cores)
    return WrapperHardware(
        resolution_bits=resolution,
        max_sample_freq_hz=speed,
        tam_width=width,
    )


@dataclass(frozen=True)
class CompatibilityPolicy:
    """Feasibility thresholds for speed/resolution co-design.

    A sharing group is *incompatible* when its joint requirements would
    force a converter that is simultaneously high-resolution
    (``>= high_resolution_bits``) and high-speed
    (``>= high_speed_hz``), with the two requirements contributed by
    *different* cores — i.e. no single core needed both, sharing
    created the pathological combination.

    :param high_resolution_bits: resolution threshold (bits).
    :param high_speed_hz: sampling-rate threshold (Hz).
    """

    high_resolution_bits: int = 12
    high_speed_hz: float = 100e6

    def is_compatible(self, cores: Sequence[AnalogCore]) -> bool:
        """Whether *cores* may share one wrapper under this policy."""
        if not cores:
            raise ValueError("at least one core is required")
        if len(cores) == 1:
            return True
        resolution, speed, _ = wrapper_requirements(cores)
        if (
            resolution < self.high_resolution_bits
            or speed < self.high_speed_hz
        ):
            return True
        # joint requirement is pathological; allow it only if one core
        # individually needed both (then sharing did not create it)
        for core in cores:
            if (
                core.resolution_bits >= self.high_resolution_bits
                and core.max_sample_freq_hz >= self.high_speed_hz
            ):
                return True
        return False

    def area_mm2(self, cores: Sequence[AnalogCore]) -> float:
        """Shared-wrapper area for *cores*.

        :raises ValueError: if the group is incompatible.
        """
        if not self.is_compatible(cores):
            names = ",".join(core.name for core in cores)
            raise ValueError(
                f"cores {{{names}}} are speed/resolution incompatible "
                f"under {self}"
            )
        resolution, speed, width = wrapper_requirements(cores)
        return wrapper_area_mm2(resolution, speed, width)


#: Policy used by the paper reproduction (admits all Table 1 groups).
DEFAULT_POLICY = CompatibilityPolicy()
