"""Behavioural data-converter models (Figure 4 of the paper).

The wrapper's converters dominate its area, so the paper builds them
*modularly*:

* the 8-bit ADC is a two-stage pipeline of 4-bit flash ADCs with an
  inter-stage 4-bit DAC and a x16 residue amplifier (Fig. 4a) — 32
  comparators instead of the 256 a monolithic 8-bit flash needs;
* the 8-bit DAC combines two 4-bit voltage-steering (resistor-string)
  DACs, the LSB one attenuated by 1/16 (Fig. 4b) — 8x fewer resistors.

This module models all four converter styles behaviourally (ideal
quantization plus optional deterministic nonidealities used by the
Figure 5 reproduction) and exposes the component counts the paper's
area argument rests on.

Conventions: codes are unsigned integers ``0 .. 2^bits - 1``; the analog
full scale is symmetric, ``[-v_fs/2, +v_fs/2]`` with ``v_fs`` defaulting
to the paper's 4 V supply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ConverterSpec",
    "FlashAdc",
    "PipelinedModularAdc",
    "ResistorStringDac",
    "ModularDac",
    "flash_comparator_count",
    "resistor_string_count",
]

#: Paper supply voltage (Section 5): 4 V full scale.
DEFAULT_FULL_SCALE_V = 4.0


def flash_comparator_count(bits: int) -> int:
    """Comparators in a monolithic *bits*-bit flash ADC.

    The paper counts ``2^n`` comparators for an n-bit flash ("an 8-bit
    flash architecture typically requires 256 comparators"); we follow
    that convention (the textbook ``2^n - 1`` differs by one and does not
    change the area argument).
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    return 2**bits


def resistor_string_count(bits: int) -> int:
    """Resistors in a *bits*-bit voltage-steering (string) DAC."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    return 2**bits


@dataclass(frozen=True)
class ConverterSpec:
    """Resolution and full scale shared by the converter models."""

    bits: int
    full_scale_v: float = DEFAULT_FULL_SCALE_V

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"bits must be >= 1, got {self.bits}")
        if self.full_scale_v <= 0:
            raise ValueError(
                f"full_scale_v must be positive, got {self.full_scale_v}"
            )

    @property
    def levels(self) -> int:
        """Number of output codes."""
        return 2**self.bits

    @property
    def lsb_v(self) -> float:
        """Voltage step of one LSB."""
        return self.full_scale_v / self.levels

    @property
    def v_min(self) -> float:
        """Lower edge of the conversion range."""
        return -self.full_scale_v / 2

    @property
    def v_max(self) -> float:
        """Upper edge of the conversion range."""
        return self.full_scale_v / 2


class FlashAdc:
    """Monolithic flash ADC: one comparator bank, single-step conversion.

    :param spec: resolution and range.
    :param inl_lsb: peak integral nonlinearity in LSB.  Modelled as a
        smooth bowing of the transfer characteristic plus a deterministic
        pseudo-random comparator-offset component (seeded, so results
        are repeatable).
    """

    def __init__(self, spec: ConverterSpec, inl_lsb: float = 0.0, seed: int = 0):
        if inl_lsb < 0:
            raise ValueError(f"inl_lsb must be >= 0, got {inl_lsb}")
        self.spec = spec
        self.inl_lsb = inl_lsb
        rng = np.random.default_rng(seed)
        # per-threshold offsets in LSB units (comparator mismatch)
        self._offsets = rng.uniform(-1.0, 1.0, spec.levels)

    @property
    def comparator_count(self) -> int:
        """Comparators in the flash bank (paper convention, ``2^bits``)."""
        return flash_comparator_count(self.spec.bits)

    def convert(self, v: np.ndarray | float) -> np.ndarray:
        """Convert voltages to codes ``0 .. 2^bits - 1`` (clipping)."""
        v = np.atleast_1d(np.asarray(v, dtype=float))
        spec = self.spec
        x = (v - spec.v_min) / spec.lsb_v
        if self.inl_lsb > 0:
            # smooth second-order bow (max at mid-scale) + comparator noise
            norm = np.clip(x / spec.levels, 0.0, 1.0)
            bow = 4.0 * norm * (1.0 - norm)
            index = np.clip(x.astype(int), 0, spec.levels - 1)
            x = x + self.inl_lsb * (0.7 * bow + 0.3 * self._offsets[index])
        codes = np.floor(x).astype(int)
        return np.clip(codes, 0, spec.levels - 1)


class ResistorStringDac:
    """Voltage-steering DAC: a ``2^bits`` resistor string plus switches."""

    def __init__(self, spec: ConverterSpec, inl_lsb: float = 0.0, seed: int = 1):
        if inl_lsb < 0:
            raise ValueError(f"inl_lsb must be >= 0, got {inl_lsb}")
        self.spec = spec
        self.inl_lsb = inl_lsb
        rng = np.random.default_rng(seed)
        self._offsets = rng.uniform(-1.0, 1.0, spec.levels)

    @property
    def resistor_count(self) -> int:
        """Resistors in the string."""
        return resistor_string_count(self.spec.bits)

    def convert(self, codes: np.ndarray) -> np.ndarray:
        """Convert codes to mid-step output voltages."""
        codes = np.atleast_1d(np.asarray(codes))
        if np.any((codes < 0) | (codes >= self.spec.levels)):
            raise ValueError(
                f"codes must lie in [0, {self.spec.levels - 1}]"
            )
        x = codes.astype(float)
        if self.inl_lsb > 0:
            norm = x / self.spec.levels
            bow = 4.0 * norm * (1.0 - norm)
            x = x + self.inl_lsb * (0.7 * bow + 0.3 * self._offsets[codes])
        return self.spec.v_min + (x + 0.5) * self.spec.lsb_v


class PipelinedModularAdc:
    """Two-stage modular pipelined ADC (Fig. 4a).

    Stage 1: a coarse flash resolves the top half of the bits; an
    inter-stage DAC reconstructs the coarse estimate; the residue is
    amplified by ``2^(bits/2)`` and digitized by the fine flash.

    :param spec: total resolution (must be even so the stages split
        equally, as in the paper's 4+4 arrangement).
    :param inl_lsb: nonideality budget forwarded to the stage flashes
        (in stage-LSB units).
    :param gain_error: relative error of the residue amplifier gain
        (0.01 = 1 % low), the dominant pipelined-ADC error source.
    """

    def __init__(
        self,
        spec: ConverterSpec,
        inl_lsb: float = 0.0,
        gain_error: float = 0.0,
        seed: int = 0,
    ):
        if spec.bits % 2 != 0:
            raise ValueError(
                f"modular ADC needs an even bit count, got {spec.bits}"
            )
        if abs(gain_error) >= 0.5:
            raise ValueError(f"gain_error out of range: {gain_error}")
        self.spec = spec
        self.gain_error = gain_error
        half = spec.bits // 2
        self._stage_bits = half
        coarse_spec = ConverterSpec(half, spec.full_scale_v)
        self._coarse = FlashAdc(coarse_spec, inl_lsb=inl_lsb, seed=seed)
        self._stage_dac = ResistorStringDac(coarse_spec, seed=seed + 1)
        # the fine flash sees the amplified residue over the full scale
        self._fine = FlashAdc(coarse_spec, inl_lsb=inl_lsb, seed=seed + 2)

    @property
    def comparator_count(self) -> int:
        """Comparators: two half-resolution flash banks (32 for 8 bits)."""
        return 2 * flash_comparator_count(self._stage_bits)

    @property
    def flash_equivalent_comparators(self) -> int:
        """Comparators a monolithic flash of equal resolution would need."""
        return flash_comparator_count(self.spec.bits)

    def convert(self, v: np.ndarray | float) -> np.ndarray:
        """Convert voltages to codes ``0 .. 2^bits - 1``."""
        v = np.atleast_1d(np.asarray(v, dtype=float))
        half = self._stage_bits
        msb = self._coarse.convert(v)
        # the stage DAC reproduces the *lower edge* of the coarse bin
        coarse_edge = self.spec.v_min + msb * (2**half) * self.spec.lsb_v
        residue = v - coarse_edge
        gain = (2**half) * (1.0 - self.gain_error)
        amplified = residue * gain + self.spec.v_min
        lsb_codes = self._fine.convert(amplified)
        codes = (msb << half) | lsb_codes
        return np.clip(codes, 0, self.spec.levels - 1)


class ModularDac:
    """Modular DAC from two half-resolution string DACs (Fig. 4b).

    The MSB DAC drives the output directly; the LSB DAC is attenuated by
    ``1/2^(bits/2)`` and summed, so the resistor count drops from
    ``2^bits`` to ``2 * 2^(bits/2)`` — the paper's 8x reduction at
    8 bits.
    """

    def __init__(self, spec: ConverterSpec, inl_lsb: float = 0.0, seed: int = 3):
        if spec.bits % 2 != 0:
            raise ValueError(
                f"modular DAC needs an even bit count, got {spec.bits}"
            )
        self.spec = spec
        half = spec.bits // 2
        self._stage_bits = half
        stage_spec = ConverterSpec(half, spec.full_scale_v)
        self._msb = ResistorStringDac(stage_spec, inl_lsb=inl_lsb, seed=seed)
        self._lsb = ResistorStringDac(stage_spec, inl_lsb=inl_lsb, seed=seed + 1)

    @property
    def resistor_count(self) -> int:
        """Resistors across both strings (32 for 8 bits)."""
        return 2 * resistor_string_count(self._stage_bits)

    @property
    def monolithic_resistor_count(self) -> int:
        """Resistors a single-string DAC of equal resolution would need."""
        return resistor_string_count(self.spec.bits)

    def convert(self, codes: np.ndarray) -> np.ndarray:
        """Convert codes to output voltages."""
        codes = np.atleast_1d(np.asarray(codes))
        if np.any((codes < 0) | (codes >= self.spec.levels)):
            raise ValueError(
                f"codes must lie in [0, {self.spec.levels - 1}]"
            )
        half = self._stage_bits
        msb = codes >> half
        lsb = codes & ((1 << half) - 1)
        v_msb = self._msb.convert(msb)
        # LSB path: remove its mid-scale offset, attenuate into one MSB bin
        v_lsb = (self._lsb.convert(lsb) - self._lsb.spec.v_min) / (2**half)
        # align: subtract the half-LSB centering of the MSB stage so the
        # combined characteristic is mid-step at full resolution
        v = v_msb - self._msb.spec.lsb_v / 2 + v_lsb
        return v
