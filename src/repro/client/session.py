"""Hardened HTTP session: deterministic retries that honor the server.

:class:`RetrySession` is the transport under the SDK — stdlib
``http.client``, one connection per request (the server closes after
each response anyway), and a **seeded** exponential-backoff-with-jitter
retry loop: the same seed produces the same backoff schedule, so chaos
tests can assert the exact retry timing instead of sleeping and
hoping.  When the server says ``Retry-After`` (429 overload, 503
drain), that wait wins over the computed backoff — the server knows
its own queue better than any client-side curve.

Retryable: connection errors, timeouts, 408/429/5xx.  Everything else
(400, 404, 405) is the caller's bug and raises immediately.  The sleep
function is injectable so tests run the whole schedule in microseconds.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["HttpResponse", "RequestFailed", "RetrySession"]

_RETRYABLE_STATUSES = frozenset({408, 429, 500, 502, 503, 504})


class RequestFailed(Exception):
    """Request gave up: non-retryable status, or attempts exhausted."""

    def __init__(self, message: str, status: int | None = None,
                 body: dict | None = None):
        super().__init__(message)
        self.status = status
        self.body = body or {}


@dataclass(frozen=True)
class HttpResponse:
    """One decoded JSON response."""

    status: int
    body: dict
    headers: dict[str, str]

    @property
    def retry_after(self) -> float | None:
        raw = self.headers.get("retry-after")
        if raw is None:
            return None
        try:
            return max(0.0, float(raw))
        except ValueError:
            return None


@dataclass
class RetrySession:
    """See module docstring."""

    host: str
    port: int
    timeout_s: float = 30.0
    max_attempts: int = 5
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 30.0
    seed: int = 0
    client_id: str = ""
    sleep: Callable[[float], None] = time.sleep
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        self._rng = random.Random(self.seed)

    # -- retry schedule ------------------------------------------------

    def backoff_s(self, attempt: int) -> float:
        """The wait before retry *attempt* (1-based): full jitter over
        an exponential envelope, deterministic for a given seed."""
        envelope = min(
            self.backoff_cap_s, self.backoff_base_s * (2 ** (attempt - 1))
        )
        return self._rng.uniform(0, envelope)

    # -- requests ------------------------------------------------------

    def request(self, method: str, path: str,
                payload: dict | None = None) -> HttpResponse:
        """One logical request, retried per the schedule.

        :raises RequestFailed: non-retryable status, or every attempt
            failed (the last failure is attached).
        """
        last_error: str = "no attempts made"
        last_status: int | None = None
        last_body: dict = {}
        for attempt in range(1, self.max_attempts + 1):
            try:
                response = self._one_request(method, path, payload)
            except (OSError, http.client.HTTPException) as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                last_status = None
                last_body = {}
            else:
                if response.status < 400:
                    return response
                last_error = str(
                    response.body.get("error", f"HTTP {response.status}")
                )
                last_status = response.status
                last_body = response.body
                if response.status not in _RETRYABLE_STATUSES:
                    raise RequestFailed(
                        last_error, status=response.status,
                        body=response.body,
                    )
            if attempt < self.max_attempts:
                wait = self.backoff_s(attempt)
                retry_after = (
                    response.retry_after
                    if last_status is not None else None
                )
                if retry_after is not None:
                    # the server's own estimate wins over our curve
                    wait = max(wait, retry_after)
                self.sleep(wait)
        raise RequestFailed(
            f"gave up after {self.max_attempts} attempts: {last_error}",
            status=last_status, body=last_body,
        )

    def _one_request(self, method: str, path: str,
                     payload: dict | None) -> HttpResponse:
        body = (
            json.dumps(payload, sort_keys=True).encode("utf-8")
            if payload is not None else None
        )
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            headers = {"Content-Type": "application/json"}
            if self.client_id:
                headers["X-Client-Id"] = self.client_id
            conn.request(method, path, body=body, headers=headers)
            raw = conn.getresponse()
            data = raw.read()
            try:
                decoded = json.loads(data.decode("utf-8")) if data else {}
            except (ValueError, UnicodeDecodeError):
                decoded = {}
            if not isinstance(decoded, dict):
                decoded = {"value": decoded}
            return HttpResponse(
                status=raw.status,
                body=decoded,
                headers={
                    name.lower(): value
                    for name, value in raw.getheaders()
                },
            )
        finally:
            conn.close()
