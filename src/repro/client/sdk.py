"""The repro client SDK: submit, poll, fetch — idempotently.

:class:`ReproClient` wraps a :class:`~repro.client.session.RetrySession`
with the job-level verbs.  Submission is naturally idempotent: the
server keys jobs by content hash, so resubmitting after a lost
response (or a crashed server) coalesces onto the original job — the
SDK just resubmits whenever it is unsure, which is the whole
idempotency story.  :meth:`wait_result` is the poll-with-deadline
helper: bounded total wait, steady poll interval, and it resubmits
once if the job vanished (a server restarted onto a fresh directory).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from .session import RequestFailed, RetrySession

__all__ = ["DeadlineExceeded", "JobTicket", "ReproClient"]


class DeadlineExceeded(Exception):
    """:meth:`ReproClient.wait_result` ran out of time."""


@dataclass(frozen=True)
class JobTicket:
    """What a submission returns."""

    job_id: str
    state: str
    coalesced: bool


class ReproClient:
    """High-level client for one repro server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8537,
        *,
        client_id: str = "",
        timeout_s: float = 30.0,
        max_attempts: int = 5,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.session = RetrySession(
            host=host, port=port, timeout_s=timeout_s,
            max_attempts=max_attempts, seed=seed,
            client_id=client_id, sleep=sleep,
        )
        self._sleep = sleep
        self._clock = clock

    @classmethod
    def from_server_dir(cls, root: str | Path, **kwargs) -> "ReproClient":
        """Connect via the server's ``server.json`` discovery record."""
        import json

        from ..server.app import SERVER_FILE

        record = json.loads(
            (Path(root) / SERVER_FILE).read_text(encoding="utf-8")
        )
        return cls(host=record["host"], port=record["port"], **kwargs)

    # -- verbs ---------------------------------------------------------

    def submit(self, kind: str, params: dict) -> JobTicket:
        """Submit (or coalesce onto) a job; durable once returned."""
        response = self.session.request(
            "POST", "/submit", {"kind": kind, "params": params}
        )
        body = response.body
        return JobTicket(
            job_id=body["job_id"],
            state=body["state"],
            coalesced=bool(body.get("coalesced")),
        )

    def submit_scenario(
        self, kind: str, scenario_text: str, params: dict | None = None
    ) -> JobTicket:
        """Submit a job against a scenario document (:mod:`repro.schema`).

        *scenario_text* is the document source (JSON or canonical
        text); it rides in the spec's ``scenario`` field, so the
        server canonicalizes it and coalesces with any equivalent
        submission — including preset submissions that build the same
        SOC.  *params* carries the remaining spec fields (width,
        strategy, ...).
        """
        merged = dict(params or {})
        merged["scenario"] = scenario_text
        return self.submit(kind, merged)

    def status(self, job_id: str) -> dict:
        return self.session.request("GET", f"/status/{job_id}").body

    def result(self, job_id: str) -> dict:
        return self.session.request("GET", f"/result/{job_id}").body

    def trace(self, job_id: str) -> list[dict]:
        body = self.session.request("GET", f"/trace/{job_id}").body
        return body.get("trace", [])

    def healthz(self) -> dict:
        return self.session.request("GET", "/healthz").body

    def drain(self) -> dict:
        return self.session.request("POST", "/drain").body

    # -- polling -------------------------------------------------------

    def wait_result(
        self,
        job_id: str,
        *,
        deadline_s: float = 300.0,
        interval_s: float = 0.5,
        resubmit: tuple[str, dict] | None = None,
    ) -> dict:
        """Poll until the job's result is ready; bounded total wait.

        With *resubmit* = ``(kind, params)``, a 404 for the job (the
        server restarted onto a fresh directory and lost the id) is
        answered by resubmitting once — the content-hash key makes
        that safe.

        :raises DeadlineExceeded: not done within *deadline_s* (the
            job keeps running server-side; poll again later).
        :raises RequestFailed: the job failed server-side, carrying
            the server's error string.
        """
        deadline = self._clock() + deadline_s
        resubmitted = False
        while True:
            try:
                body = self.result(job_id)
            except RequestFailed as exc:
                if exc.status == 404 and resubmit and not resubmitted:
                    kind, params = resubmit
                    job_id = self.submit(kind, params).job_id
                    resubmitted = True
                    continue
                raise
            if body.get("ready"):
                return body
            if body.get("state") == "failed":
                raise RequestFailed(
                    f"job {job_id} failed: {body.get('error')}",
                    status=200, body=body,
                )
            remaining = deadline - self._clock()
            if remaining <= 0:
                raise DeadlineExceeded(
                    f"job {job_id} not done within {deadline_s:.1f}s "
                    f"(state={body.get('state')!r})"
                )
            self._sleep(min(interval_s, remaining))
