"""repro.client — retrying SDK for the repro server.

A two-layer client mirroring the server's robustness guarantees:
:class:`~repro.client.session.RetrySession` (seeded
exponential-backoff-with-jitter transport that honors ``Retry-After``)
under :class:`~repro.client.sdk.ReproClient` (submit / status / result
/ trace verbs plus poll-with-deadline).  Submission is idempotent end
to end: jobs are keyed by content hash server-side, so a retried or
resubmitted request coalesces instead of duplicating work.
"""

from .sdk import DeadlineExceeded, JobTicket, ReproClient
from .session import HttpResponse, RequestFailed, RetrySession

__all__ = [
    "DeadlineExceeded",
    "HttpResponse",
    "JobTicket",
    "ReproClient",
    "RequestFailed",
    "RetrySession",
]
